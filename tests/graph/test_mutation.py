"""Unit tests for the graph-mutation layer (deltas + mutator).

The contract under test (see ``repro.graph.mutation``):

* resolution is **strict** — closing a closed node, re-costing a
  missing edge, non-positive weights are all :class:`MutationError`;
* application is **lenient and idempotent** — re-applying a delta is a
  no-op, so exactly-once delivery is never required;
* deltas are **absolute** — merging is order-respecting last-write-wins,
  and a merged delta applied once equals the op sequence applied one at
  a time.
"""

from __future__ import annotations

import pickle

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.mutation import (
    GraphDelta,
    GraphMutator,
    MutationError,
    apply_graph_delta,
    resolve_ops,
)


def small_graph():
    """4 nodes, a cycle plus a chord, keywords on three of them."""
    builder = GraphBuilder()
    builder.add_node(keywords=["pub"])
    builder.add_node(keywords=["mall"])
    builder.add_node(keywords=["cafe", "pub"])
    builder.add_node()
    for u, v, obj, bud in (
        (0, 1, 1.0, 1.0),
        (1, 2, 2.0, 1.5),
        (2, 3, 1.0, 1.0),
        (3, 0, 1.5, 2.0),
        (0, 2, 3.0, 3.0),
    ):
        builder.add_edge(u, v, obj, bud)
    return builder.build()


def edge_map(graph):
    return {
        (u, v): (obj, bud)
        for u in range(graph.num_nodes)
        for v, obj, bud in graph.out_edges(u)
    }


def keyword_map(graph):
    return {
        u: tuple(sorted(graph.node_keyword_strings(u)))
        for u in range(graph.num_nodes)
    }


class TestGraphDelta:
    def test_empty_and_structural_flags(self):
        assert GraphDelta().is_empty
        assert not GraphDelta().structural
        assert GraphDelta(set_edges=((0, 1, 1.0, 1.0),)).structural
        assert GraphDelta(drop_edges=((0, 1),)).structural
        assert not GraphDelta(set_keywords=((0, ("pub",)),)).structural

    def test_touched_nodes_covers_all_anchors(self):
        delta = GraphDelta(
            set_edges=((0, 1, 1.0, 1.0),),
            drop_edges=((2, 3),),
            set_keywords=((1, ("pub",)),),
        )
        assert delta.touched_nodes() == frozenset({0, 1, 2, 3})

    def test_merge_is_last_write_wins(self):
        first = GraphDelta(
            set_edges=((0, 1, 1.0, 1.0), (1, 2, 2.0, 2.0)),
            set_keywords=((0, ("pub",)),),
        )
        second = GraphDelta(
            drop_edges=((0, 1),),
            set_edges=((1, 2, 5.0, 5.0),),
            set_keywords=((0, ()),),
        )
        merged = first.merge(second)
        assert merged.drop_edges == ((0, 1),)
        assert merged.set_edges == ((1, 2, 5.0, 5.0),)
        assert merged.set_keywords == ((0, ()),)
        # And the other order resurrects the edge instead.
        reversed_merge = second.merge(first)
        assert (0, 1, 1.0, 1.0) in reversed_merge.set_edges
        assert reversed_merge.drop_edges == ()

    def test_merged_delta_equals_sequential_application(self):
        graph = small_graph()
        first = GraphDelta(set_edges=((0, 1, 9.0, 9.0),), drop_edges=((0, 2),))
        second = GraphDelta(
            set_edges=((0, 2, 1.0, 1.0),), set_keywords=((3, ("park",)),)
        )
        sequential = apply_graph_delta(apply_graph_delta(graph, first), second)
        merged = apply_graph_delta(graph, first.merge(second))
        assert edge_map(sequential) == edge_map(merged)
        assert keyword_map(sequential) == keyword_map(merged)

    def test_delta_round_trips_through_pickle(self):
        delta = GraphDelta(
            set_edges=((0, 1, 1.5, 2.0),),
            drop_edges=((2, 3),),
            set_keywords=((1, ("mall", "pub")),),
        )
        assert pickle.loads(pickle.dumps(delta)) == delta


class TestApplyGraphDelta:
    def test_application_is_idempotent(self):
        graph = small_graph()
        delta = GraphDelta(
            set_edges=((0, 1, 7.0, 7.0),),
            drop_edges=((1, 2),),
            set_keywords=((0, ("imax",)),),
        )
        once = apply_graph_delta(graph, delta)
        twice = apply_graph_delta(once, delta)
        assert edge_map(once) == edge_map(twice)
        assert keyword_map(once) == keyword_map(twice)

    def test_empty_delta_returns_same_graph(self):
        graph = small_graph()
        assert apply_graph_delta(graph, GraphDelta()) is graph

    def test_updated_edge_keeps_adjacency_position(self):
        graph = small_graph()
        before = [v for v, _o, _b in graph.out_edges(0)]
        updated = apply_graph_delta(
            graph, GraphDelta(set_edges=((0, 2, 9.0, 9.0),))
        )
        assert [v for v, _o, _b in updated.out_edges(0)] == before

    def test_out_of_range_node_is_rejected(self):
        graph = small_graph()
        with pytest.raises(MutationError, match="outside the graph"):
            apply_graph_delta(graph, GraphDelta(drop_edges=((0, 99),)))

    def test_keyword_table_is_shared_and_append_only(self):
        graph = small_graph()
        updated = apply_graph_delta(
            graph, GraphDelta(set_keywords=((3, ("zoo",)),))
        )
        assert updated.keyword_table is graph.keyword_table
        assert "zoo" in set(graph.keyword_table.words)


class TestGraphMutator:
    def test_update_edge_cost_partial_weights_persist(self):
        mutator = GraphMutator(small_graph())
        mutator.update_edge_cost(0, 1, objective=4.0)
        assert mutator.graph.edge(0, 1) == (4.0, 1.0)
        mutator.update_edge_cost(0, 1, budget=6.0)
        assert mutator.graph.edge(0, 1) == (4.0, 6.0)

    def test_update_edge_cost_validation(self):
        mutator = GraphMutator(small_graph())
        with pytest.raises(MutationError, match="no edge"):
            mutator.update_edge_cost(1, 0, objective=2.0)
        with pytest.raises(MutationError, match="needs objective"):
            mutator.update_edge_cost(0, 1)
        with pytest.raises(MutationError, match="finite and > 0"):
            mutator.update_edge_cost(0, 1, objective=0.0)
        with pytest.raises(MutationError, match="finite and > 0"):
            mutator.update_edge_cost(0, 1, budget=float("inf"))
        with pytest.raises(MutationError, match="outside the graph"):
            mutator.update_edge_cost(0, 99, objective=1.0)

    def test_close_strips_edges_and_keywords(self):
        mutator = GraphMutator(small_graph())
        mutator.close_node(2)
        graph = mutator.graph
        assert mutator.closed_nodes == frozenset({2})
        assert not graph.out_edges(2)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)
        assert not graph.node_keyword_strings(2)

    def test_double_close_and_open_of_open_are_rejected(self):
        mutator = GraphMutator(small_graph())
        mutator.close_node(2)
        with pytest.raises(MutationError, match="already closed"):
            mutator.close_node(2)
        with pytest.raises(MutationError, match="not closed"):
            mutator.open_node(0)

    def test_closed_node_refuses_edge_and_keyword_updates(self):
        mutator = GraphMutator(small_graph())
        mutator.close_node(2)
        with pytest.raises(MutationError, match="closed"):
            mutator.update_edge_cost(0, 2, objective=1.0)
        with pytest.raises(MutationError, match="closed"):
            mutator.update_keywords(2, ["pub"])

    def test_reopen_restores_latest_edges_and_keywords(self):
        mutator = GraphMutator(small_graph())
        mutator.update_edge_cost(0, 2, objective=8.0)
        mutator.update_keywords(2, ["zoo"])
        mutator.close_node(2)
        mutator.open_node(2)
        graph = mutator.graph
        # The explicit overrides survive the closure, not the base state.
        assert graph.edge(0, 2) == (8.0, 3.0)
        assert graph.edge(1, 2) == (2.0, 1.5)
        assert set(graph.node_keyword_strings(2)) == {"zoo"}

    def test_reopen_skips_edges_toward_closed_neighbours(self):
        mutator = GraphMutator(small_graph())
        mutator.close_node(1)
        mutator.close_node(2)
        mutator.open_node(2)
        graph = mutator.graph
        assert not graph.has_edge(1, 2)  # neighbour 1 is still closed
        assert graph.has_edge(0, 2)
        assert graph.has_edge(2, 3)
        mutator.open_node(1)
        assert mutator.graph.has_edge(1, 2)

    def test_close_open_round_trip_restores_base_world(self):
        graph = small_graph()
        mutator = GraphMutator(graph)
        for node in (1, 3):
            mutator.close_node(node)
        for node in (3, 1):
            mutator.open_node(node)
        assert edge_map(mutator.graph) == edge_map(graph)
        assert keyword_map(mutator.graph) == keyword_map(graph)

    def test_update_keywords_normalises_and_validates(self):
        mutator = GraphMutator(small_graph())
        mutator.update_keywords(0, ["zoo", "pub", "zoo"])
        assert set(mutator.graph.node_keyword_strings(0)) == {"pub", "zoo"}
        with pytest.raises(MutationError, match="non-empty strings"):
            mutator.update_keywords(0, [""])

    def test_apply_op_dispatches_and_rejects_unknown(self):
        mutator = GraphMutator(small_graph())
        mutator.apply_op({"op": "update_edge_cost", "u": 0, "v": 1, "objective": 3.0})
        assert mutator.graph.edge(0, 1) == (3.0, 1.0)
        with pytest.raises(MutationError, match="unknown mutation op"):
            mutator.apply_op({"op": "grow_node"})


class TestResolveOps:
    def test_merged_delta_reproduces_the_mutator_graph(self):
        graph = small_graph()
        ops = [
            {"op": "update_edge_cost", "u": 0, "v": 1, "objective": 2.5},
            {"op": "close_node", "node": 2},
            {"op": "update_keywords", "node": 3, "keywords": ["park"]},
            {"op": "open_node", "node": 2},
        ]
        mutator = GraphMutator(graph)
        delta = resolve_ops(mutator, ops)
        replayed = apply_graph_delta(graph, delta)
        assert edge_map(replayed) == edge_map(mutator.graph)
        assert keyword_map(replayed) == keyword_map(mutator.graph)

    def test_error_mid_sequence_keeps_earlier_ops_applied(self):
        mutator = GraphMutator(small_graph())
        ops = [
            {"op": "close_node", "node": 1},
            {"op": "close_node", "node": 1},  # invalid: already closed
        ]
        with pytest.raises(MutationError, match="already closed"):
            resolve_ops(mutator, ops)
        assert mutator.closed_nodes == frozenset({1})
