"""The Figure-1 reconstruction must reproduce every worked fact in the paper."""

import pytest

from repro.core.route import Route
from repro.graph.generators import (
    FIGURE_1_KEYWORDS,
    complete_bigraph,
    figure_1_graph,
    grid_graph,
    line_graph,
)
from repro.prep.tables import CostTables


@pytest.fixture(scope="module")
def graph():
    return figure_1_graph()


@pytest.fixture(scope="module")
def tables(graph):
    return CostTables.from_graph(graph, method="floyd-warshall")


class TestPaperFacts:
    """Each test pins one fact stated in the paper's text."""

    def test_section2_route_scores(self, graph):
        # "given the route R = <v0,v3,v5,v7>, we have OS(R) = 2+3+4 = 9
        #  and BS(R) = 2+2+1 = 5"
        route = Route.from_nodes(graph, [0, 3, 5, 7])
        assert route.objective_score == 9.0
        assert route.budget_score == 5.0

    def test_preprocessing_tau07(self, graph, tables):
        # "tau_{0,7} = <v0,v3,v4,v7> with OS 4 and BS 7"
        assert tables.os_tau[0, 7] == 4.0
        assert tables.bs_tau[0, 7] == 7.0
        assert tables.tau_path(0, 7) == [0, 3, 4, 7]

    def test_preprocessing_sigma07(self, graph, tables):
        # "sigma_{0,7} = <v0,v3,v5,v7> with OS 9 and BS 5"
        assert tables.os_sigma[0, 7] == 9.0
        assert tables.bs_sigma[0, 7] == 5.0
        assert tables.sigma_path(0, 7) == [0, 3, 5, 7]

    def test_example2_helper_scores(self, tables):
        # Step (b): BS(sigma_{6,7}) = 7; step (c): OS(tau_{3,7}) = 2 with
        # budget 5; step (e): OS(tau_{5,7}) = 3 with budget 4.
        assert tables.bs_sigma[6, 7] == 7.0
        assert tables.os_tau[3, 7] == 2.0
        assert tables.bs_tau[3, 7] == 5.0
        assert tables.os_tau[5, 7] == 3.0
        assert tables.bs_tau[5, 7] == 4.0

    def test_example1_route_scores(self, graph):
        # R1 = <v0,v2,v3,v4> label (., 100, 5, 7); R2 = <v0,v2,v6,v5,v4>
        # label (., 120, 6, 11) at theta = 1/20.
        r1 = Route.from_nodes(graph, [0, 2, 3, 4])
        r2 = Route.from_nodes(graph, [0, 2, 6, 5, 4])
        assert (r1.objective_score, r1.budget_score) == (5.0, 7.0)
        assert (r2.objective_score, r2.budget_score) == (6.0, 11.0)

    def test_theta_ingredients(self, graph):
        # Example 1: theta = 0.5 * o_min * b_min / 10 = 1/20.
        assert graph.min_objective * graph.min_budget == 1.0

    def test_keyword_assignment(self, graph):
        for node, keyword in enumerate(FIGURE_1_KEYWORDS):
            assert graph.node_keyword_strings(node) == frozenset({keyword})


class TestSyntheticGenerators:
    def test_line_graph_shape(self):
        graph = line_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.has_edge(2, 3) and not graph.has_edge(3, 2)

    def test_line_graph_keywords(self):
        graph = line_graph(3, keywords=[["a"], [], ["b"]])
        assert graph.node_keyword_strings(0) == frozenset({"a"})
        assert graph.node_keyword_strings(1) == frozenset()

    def test_grid_graph_ids_and_edges(self):
        graph = grid_graph(2, 3)
        assert graph.num_nodes == 6
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert graph.has_edge(0, 3) and graph.has_edge(3, 0)
        assert not graph.has_edge(0, 4)  # no diagonals

    def test_grid_graph_coordinates(self):
        graph = grid_graph(2, 2)
        assert graph.coordinates(3) == (1.0, 1.0)

    def test_complete_bigraph(self):
        graph = complete_bigraph(4)
        assert graph.num_edges == 12
        assert all(
            graph.has_edge(u, v) for u in range(4) for v in range(4) if u != v
        )
