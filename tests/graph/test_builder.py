"""Unit tests for incremental graph construction (repro.graph.builder)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder


def two_node_builder() -> GraphBuilder:
    builder = GraphBuilder()
    builder.add_node(keywords=["pub"])
    builder.add_node(keywords=["mall"])
    return builder


class TestNodes:
    def test_node_ids_are_sequential(self):
        builder = GraphBuilder()
        assert builder.add_node() == 0
        assert builder.add_node() == 1
        assert builder.num_nodes == 2

    def test_default_names_are_v_prefixed(self):
        builder = two_node_builder()
        builder.add_edge(0, 1, 1.0, 1.0)
        graph = builder.build()
        assert graph.name_of(0) == "v0"
        assert graph.name_of(1) == "v1"

    def test_coordinates_must_be_consistent(self):
        builder = GraphBuilder()
        builder.add_node(x=0.0, y=0.0)
        with pytest.raises(GraphError, match="consistently"):
            builder.add_node()

    def test_partial_coordinates_rejected(self):
        with pytest.raises(GraphError, match="both x and y"):
            GraphBuilder().add_node(x=1.0)

    def test_add_keywords_extends_existing_node(self):
        builder = two_node_builder()
        builder.add_keywords(0, ["cafe"])
        builder.add_edge(0, 1, 1.0, 1.0)
        graph = builder.build()
        assert graph.node_keyword_strings(0) == frozenset({"pub", "cafe"})

    def test_add_keywords_to_unknown_node_raises(self):
        with pytest.raises(GraphError, match="unknown node"):
            two_node_builder().add_keywords(9, ["x"])


class TestEdges:
    def test_self_loop_rejected(self):
        builder = two_node_builder()
        with pytest.raises(GraphError, match="self-loop"):
            builder.add_edge(0, 0, 1.0, 1.0)

    @pytest.mark.parametrize("objective,budget", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0), (1.0, -2.0)])
    def test_non_positive_weights_rejected(self, objective, budget):
        builder = two_node_builder()
        with pytest.raises(GraphError, match="must be > 0"):
            builder.add_edge(0, 1, objective, budget)

    def test_duplicate_edge_rejected_without_overwrite(self):
        builder = two_node_builder()
        builder.add_edge(0, 1, 1.0, 1.0)
        with pytest.raises(GraphError, match="duplicate edge"):
            builder.add_edge(0, 1, 2.0, 2.0)

    def test_overwrite_replaces_weights(self):
        builder = two_node_builder()
        builder.add_edge(0, 1, 1.0, 1.0)
        builder.add_edge(0, 1, 2.0, 3.0, overwrite=True)
        graph = builder.build()
        assert graph.edge(0, 1) == (2.0, 3.0)

    def test_edge_to_unknown_node_rejected(self):
        builder = two_node_builder()
        with pytest.raises(GraphError, match="unknown node"):
            builder.add_edge(0, 5, 1.0, 1.0)

    def test_bidirectional_edge_adds_both_arcs(self):
        builder = two_node_builder()
        builder.add_bidirectional_edge(0, 1, 1.5, 2.5)
        graph = builder.build()
        assert graph.edge(0, 1) == (1.5, 2.5)
        assert graph.edge(1, 0) == (1.5, 2.5)


class TestBuild:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty graph"):
            GraphBuilder().build()

    def test_edgeless_graph_rejected(self):
        builder = GraphBuilder()
        builder.add_node()
        with pytest.raises(GraphError, match="no edges"):
            builder.build()

    def test_build_freezes_counts(self):
        builder = two_node_builder()
        builder.add_edge(0, 1, 1.0, 1.0)
        graph = builder.build()
        assert graph.num_nodes == 2
        assert graph.num_edges == 1

    def test_shared_keyword_table_is_reused(self):
        from repro.graph.keywords import KeywordTable

        table = KeywordTable()
        table.intern("existing")
        builder = GraphBuilder(keyword_table=table)
        builder.add_node(keywords=["pub"])
        builder.add_node()
        builder.add_edge(0, 1, 1.0, 1.0)
        graph = builder.build()
        assert graph.keyword_table.get("existing") == 0
        assert graph.keyword_table.get("pub") == 1
