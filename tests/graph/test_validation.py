"""Tests for structural validation (repro.graph.validation)."""

from repro.graph.builder import GraphBuilder
from repro.graph.generators import figure_1_graph, grid_graph, line_graph
from repro.graph.validation import (
    is_strongly_connected,
    largest_scc,
    reachable_from,
    strongly_connected_components,
    validate_graph,
)


def two_scc_graph():
    """Nodes {0,1} form one SCC; {2,3,4} another; one bridge 1 -> 2."""
    builder = GraphBuilder()
    for _ in range(5):
        builder.add_node(keywords=["k"])
    builder.add_edge(0, 1, 1.0, 1.0)
    builder.add_edge(1, 0, 1.0, 1.0)
    builder.add_edge(1, 2, 1.0, 1.0)
    builder.add_edge(2, 3, 1.0, 1.0)
    builder.add_edge(3, 4, 1.0, 1.0)
    builder.add_edge(4, 2, 1.0, 1.0)
    return builder.build()


class TestReachability:
    def test_reachable_from_line_start(self):
        graph = line_graph(4)
        assert reachable_from(graph, 0) == {0, 1, 2, 3}

    def test_reachable_from_line_end(self):
        graph = line_graph(4)
        assert reachable_from(graph, 3) == {3}

    def test_grid_strongly_connected(self):
        assert is_strongly_connected(grid_graph(3, 3))

    def test_line_not_strongly_connected(self):
        assert not is_strongly_connected(line_graph(3))


class TestScc:
    def test_components_of_two_scc_graph(self):
        components = {frozenset(c) for c in strongly_connected_components(two_scc_graph())}
        assert components == {frozenset({0, 1}), frozenset({2, 3, 4})}

    def test_figure1_components_cover_all_nodes(self):
        graph = figure_1_graph()
        components = strongly_connected_components(graph)
        assert sorted(v for c in components for v in c) == list(range(graph.num_nodes))

    def test_largest_scc_extraction(self):
        sub, mapping = largest_scc(two_scc_graph())
        assert sub.num_nodes == 3
        assert set(mapping) == {2, 3, 4}
        assert is_strongly_connected(sub)

    def test_deep_graph_does_not_recurse(self):
        # 3000-node cycle: recursion-based Kosaraju would blow the stack.
        builder = GraphBuilder()
        n = 3000
        for _ in range(n):
            builder.add_node()
        for i in range(n):
            builder.add_edge(i, (i + 1) % n, 1.0, 1.0)
        components = strongly_connected_components(builder.build())
        assert len(components) == 1 and len(components[0]) == n


class TestValidateGraph:
    def test_clean_graph_is_ok(self):
        report = validate_graph(grid_graph(3, 3, keywords={0: ["a"]}))
        assert report.strongly_connected
        assert report.ok

    def test_line_graph_warns_about_sink_and_connectivity(self):
        report = validate_graph(line_graph(3, keywords=[["a"], [], []]))
        assert not report.ok
        assert report.num_sinks == 1
        assert not report.strongly_connected

    def test_keywordless_graph_warns(self):
        report = validate_graph(grid_graph(2, 2))
        assert report.num_keywordless == 4
        assert any("no node carries" in w for w in report.warnings)
