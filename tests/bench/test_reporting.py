"""Tests for the result table emitters (repro.bench.reporting)."""

import json

from repro.bench.reporting import format_value, render_markdown, render_table, save_json


class TestFormatValue:
    def test_nan_renders_dash(self):
        assert format_value(float("nan")) == "-"

    def test_magnitude_dependent_precision(self):
        assert format_value(1234.5) == "1234"
        assert format_value(42.31) == "42.3"
        assert format_value(1.2345) == "1.234"
        assert format_value(0.00001) == "1.00e-05"

    def test_strings_pass_through(self):
        assert format_value("OSScaling") == "OSScaling"

    def test_zero(self):
        assert format_value(0.0) == "0"


class TestRenderTable:
    def test_contains_series_and_notes(self):
        text = render_table(
            title="fig: demo",
            x_name="k",
            xs=[1, 2],
            series={"A": [1.0, 2.0], "B": [3.0, 4.0]},
            y_name="ms",
            notes="hello",
        )
        assert "fig: demo" in text
        assert "A" in text and "B" in text
        assert "note: hello" in text
        assert len(text.splitlines()) == 7  # title, unit, header, rule, 2 rows, note

    def test_column_alignment(self):
        text = render_table("t", "x", [10], {"verylongname": [1.0]})
        header, rule = text.splitlines()[2:4]
        assert len(header) == len(rule)


class TestRenderMarkdown:
    def test_pipe_table_shape(self):
        text = render_markdown("T", "x", [1], {"A": [2.0]})
        lines = text.splitlines()
        assert lines[2].startswith("| x | A |")
        assert lines[3].startswith("|---")
        assert "| 1 | 2.000 |" in lines[4]


class TestSaveJson:
    def test_nan_becomes_null(self, tmp_path):
        path = tmp_path / "out.json"
        save_json(path, {"series": [1.0, float("nan")], "nested": {"x": float("nan")}})
        loaded = json.loads(path.read_text())
        assert loaded["series"] == [1.0, None]
        assert loaded["nested"]["x"] is None
