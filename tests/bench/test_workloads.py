"""Tests for benchmark workload caching (repro.bench.workloads)."""

import pytest

from repro.bench import workloads


@pytest.fixture(autouse=True)
def fresh_caches(monkeypatch):
    monkeypatch.setenv("KOR_BENCH_SCALE", "small")
    monkeypatch.setenv("KOR_BENCH_QUERIES", "3")
    workloads.clear_caches()
    yield
    workloads.clear_caches()


class TestEnvironmentKnobs:
    def test_num_queries_from_env(self):
        assert workloads.bench_num_queries() == 3

    def test_scale_from_env(self):
        assert workloads.bench_scale() == "small"

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("KOR_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            workloads.bench_scale()

    def test_road_sizes_scale(self):
        assert workloads.road_sizes("small") == (500, 1000, 1500, 2000)
        assert workloads.road_sizes("paper") == (5000, 10000, 15000, 20000)


class TestWorkloadCaching:
    def test_flickr_workload_is_cached(self):
        first = workloads.flickr_workload()
        second = workloads.flickr_workload()
        assert first is second

    def test_query_sets_cached_per_cell(self):
        workload = workloads.flickr_workload()
        a = workload.query_set(2, 3.0)
        b = workload.query_set(2, 3.0)
        assert a is b
        c = workload.query_set(2, 6.0)
        assert c is not a

    def test_query_set_sizes_follow_env(self):
        workload = workloads.flickr_workload()
        assert len(workload.query_set(2, 6.0)) == 3

    def test_road_workload_builds_and_caches(self):
        first = workloads.road_workload(200)
        second = workloads.road_workload(200)
        assert first is second
        assert first.graph.num_nodes > 100
