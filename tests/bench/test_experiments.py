"""Tests for the experiment layer (repro.bench.experiments).

Uses the tiny 'small' scale with 2 queries per set so each experiment
runs in seconds; shapes are asserted on structure, not absolute numbers.
"""

import json

import pytest

from repro.bench import experiments, workloads


@pytest.fixture(autouse=True)
def small_env(monkeypatch):
    monkeypatch.setenv("KOR_BENCH_SCALE", "small")
    monkeypatch.setenv("KOR_BENCH_QUERIES", "2")
    workloads.clear_caches()
    experiments.clear_cell_cache()
    yield
    workloads.clear_caches()
    experiments.clear_cell_cache()


class TestCellCache:
    def test_cells_are_cached(self):
        workload = workloads.flickr_workload()
        a = experiments.cell_summary(workload, "greedy", 2, 6.0, alpha=0.5)
        b = experiments.cell_summary(workload, "greedy", 2, 6.0, alpha=0.5)
        assert a is b

    def test_distinct_params_distinct_cells(self):
        workload = workloads.flickr_workload()
        a = experiments.cell_summary(workload, "greedy", 2, 6.0, alpha=0.5)
        b = experiments.cell_summary(workload, "greedy", 2, 6.0, alpha=0.0)
        assert a is not b

    def test_named_cell_dispatch(self):
        workload = workloads.flickr_workload()
        for name in ("OSScaling", "BucketBound", "Greedy-1", "Greedy-2"):
            summary = experiments.named_cell(workload, name, 2, 6.0)
            assert summary.total == 2
        with pytest.raises(ValueError):
            experiments.named_cell(workload, "Dijkstra", 2, 6.0)


class TestExperimentStructure:
    def test_fig06_runtime_series(self):
        result = experiments.fig06_runtime_vs_epsilon()
        assert result.figure == "fig06"
        assert list(result.xs) == list(experiments.EPSILONS)
        assert len(result.series["OSScaling"]) == len(result.xs)
        assert all(v >= 0 for v in result.series["OSScaling"])

    def test_fig09_ratio_within_theorem3(self):
        result = experiments.fig09_ratio_vs_beta()
        for beta, ratio in zip(result.xs, result.series["BucketBound"]):
            if ratio == ratio:  # not NaN
                assert ratio <= beta / (1 - 0.5) + 1e-6

    def test_fig13_failure_percentages_bounded(self):
        result = experiments.fig13_failure_vs_alpha()
        for series in result.series.values():
            assert all(0.0 <= value <= 100.0 for value in series)

    def test_equal_bound_parameters(self):
        eps_os, eps_bb, beta = experiments._equal_bound_params(2.0)
        assert eps_os == pytest.approx(0.5)      # 1/(1-eps) = 2
        assert beta / (1 - eps_bb) == pytest.approx(2.0)

    def test_save_round_trip(self, tmp_path):
        result = experiments.fig06_runtime_vs_epsilon()
        path = result.save(tmp_path)
        loaded = json.loads(path.read_text())
        assert loaded["figure"] == "fig06"
        assert loaded["xs"] == list(result.xs)
        assert (tmp_path / "fig06.txt").exists()

    def test_to_table_mentions_figure(self):
        result = experiments.fig06_runtime_vs_epsilon()
        assert "fig06" in result.to_table()

    def test_sharded_memory_structure(self):
        result = experiments.sharded_memory(cell_counts=(1, 2, 4))
        assert result.figure == "sharded_memory"
        assert result.xs == [1, 2, 4]
        sharded = result.series["sharded service tables (MB)"]
        flat = result.series["flat score tables (MB)"]
        assert all(mb > 0 for mb in sharded)
        assert len(set(flat)) == 1  # the flat reference is a constant line
        # Multi-cell deployments must undercut both the flat score
        # tables and the single-cell footprint (no global tier left).
        assert all(mb < flat[0] for mb in sharded[1:])
        assert all(mb < sharded[0] for mb in sharded[1:])
        assert result.meta["border_nodes"][1] == 0

    def test_sharded_throughput_structure(self):
        result = experiments.sharded_throughput(workers=2)
        assert result.figure == "sharded_throughput"
        assert result.xs == ["figure1", "flickr"]
        for name in ("SerialBackend", "ThreadBackend", "ProcessBackend"):
            assert len(result.series[name]) == 2
            assert all(qps > 0 for qps in result.series[name])
        assert result.meta["usable_cpus"] >= 1
        assert result.meta["num_cells"]["flickr"] >= 2
        for dataset in result.xs:
            speedups = result.meta["speedup_over_serial"][dataset]
            assert speedups["SerialBackend"] == pytest.approx(1.0)
