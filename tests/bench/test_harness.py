"""Tests for the benchmark harness (repro.bench.harness)."""

import math

from repro.bench.harness import (
    QueryOutcome,
    RunSummary,
    failure_percentage,
    relative_ratio,
    run_query_set,
    run_service_query_set,
)
from repro.core.query import KORQuery


def outcome(feasible, os=1.0, runtime=0.001):
    return QueryOutcome(
        query=KORQuery(0, 1, ("t1",), 5.0),
        feasible=feasible,
        objective_score=os,
        budget_score=1.0,
        runtime_seconds=runtime,
    )


class TestRunSummary:
    def test_mean_runtime(self):
        summary = RunSummary("x", (outcome(True, runtime=0.002), outcome(True, runtime=0.004)))
        assert summary.mean_runtime_ms == 3.0

    def test_counts(self):
        summary = RunSummary("x", (outcome(True), outcome(False), outcome(True)))
        assert summary.feasible_count == 2
        assert summary.total == 3

    def test_empty_summary(self):
        summary = RunSummary("x", ())
        assert summary.mean_runtime_ms == 0.0


class TestRelativeRatio:
    def test_mean_over_mutually_feasible(self):
        run = RunSummary("a", (outcome(True, os=2.0), outcome(True, os=3.0)))
        base = RunSummary("b", (outcome(True, os=1.0), outcome(True, os=1.0)))
        assert relative_ratio(run, base) == 2.5

    def test_skips_infeasible_pairs(self):
        run = RunSummary("a", (outcome(True, os=2.0), outcome(False, os=9.0)))
        base = RunSummary("b", (outcome(True, os=1.0), outcome(True, os=1.0)))
        assert relative_ratio(run, base) == 2.0

    def test_nan_when_nothing_comparable(self):
        run = RunSummary("a", (outcome(False),))
        base = RunSummary("b", (outcome(True),))
        assert math.isnan(relative_ratio(run, base))


class TestFailurePercentage:
    def test_counts_failures_over_solvable(self):
        run = RunSummary("a", (outcome(False), outcome(True), outcome(False)))
        base = RunSummary("b", (outcome(True), outcome(True), outcome(False)))
        # Two solvable queries (base feasible); greedy failed one of them.
        assert failure_percentage(run, base) == 50.0

    def test_zero_when_nothing_solvable(self):
        run = RunSummary("a", (outcome(False),))
        base = RunSummary("b", (outcome(False),))
        assert failure_percentage(run, base) == 0.0


class TestRunQuerySet:
    def test_records_per_query_outcomes(self, fig1_engine):
        queries = [
            KORQuery(0, 7, ("t1", "t2"), 10.0),
            KORQuery(0, 7, ("t5",), 6.0),  # infeasible
        ]
        summary = run_query_set(fig1_engine, queries, "bucketbound")
        assert summary.total == 2
        assert summary.feasible_count == 1
        assert summary.outcomes[0].runtime_seconds > 0
        assert summary.outcomes[1].objective_score == float("inf")


class TestRunServiceQuerySet:
    def test_serving_summary_matches_engine_outcomes(self, fig1_engine):
        from repro.service import QueryService

        queries = [
            KORQuery(0, 7, ("t1", "t2"), 10.0),
            KORQuery(0, 7, ("t5",), 6.0),  # infeasible
        ]
        service = QueryService(fig1_engine, cache_capacity=32)
        served = run_service_query_set(service, queries, "bucketbound", workers=2)
        direct = run_query_set(fig1_engine, queries, "bucketbound")
        assert served.summary.total == direct.total
        assert served.summary.feasible_count == direct.feasible_count
        assert [o.objective_score for o in served.summary.outcomes] == [
            o.objective_score for o in direct.outcomes
        ]
        assert served.wall_seconds > 0
        assert served.throughput_qps > 0
        assert served.snapshot.queries >= 2

    def test_warm_pass_is_all_hits(self, fig1_engine):
        from repro.service import QueryService

        queries = [KORQuery(0, 7, ("t1", "t2"), 10.0)] * 3
        service = QueryService(fig1_engine, cache_capacity=32)
        run_service_query_set(service, queries, "bucketbound")
        warm = run_service_query_set(service, queries, "bucketbound")
        assert warm.snapshot.cache_hits >= 3
