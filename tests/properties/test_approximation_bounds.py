"""Property-based tests of the paper's theorems on random small graphs.

For every random (graph, query) instance:

* OSScaling and BucketBound return *feasible* routes whenever the exact
  search finds one (completeness);
* Theorem 2: ``OS(OSScaling) <= OS(opt) / (1 - eps)``;
* Theorem 3: ``OS(BucketBound) <= OS(opt) * beta / (1 - eps)``;
* all algorithms agree on infeasibility.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import branch_and_bound
from repro.core.bucketbound import bucket_bound
from repro.core.osscaling import os_scaling
from repro.core.query import KORQuery
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

from tests.strategies import graph_and_query

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def prepared(graph):
    return CostTables.from_graph(graph, method="floyd-warshall"), InvertedIndex.from_graph(graph)


class TestAgainstExactOptimum:
    @SLOW
    @given(graph_and_query(), st.sampled_from((0.1, 0.5, 0.9)))
    def test_theorem2_osscaling_bound(self, instance, epsilon):
        graph, source, target, keywords, delta = instance
        tables, index = prepared(graph)
        query = KORQuery(source, target, keywords, delta)
        exact = branch_and_bound(graph, tables, index, query)
        result = os_scaling(graph, tables, index, query, epsilon=epsilon)
        if not exact.feasible:
            assert not result.feasible
            return
        assert result.feasible
        assert result.route.covers(graph, keywords)
        assert result.route.budget_score <= delta + 1e-9
        assert (
            result.route.objective_score
            <= exact.route.objective_score / (1 - epsilon) + 1e-9
        )

    @SLOW
    @given(graph_and_query(), st.sampled_from((1.2, 1.6, 2.0)))
    def test_theorem3_bucketbound_bound(self, instance, beta):
        graph, source, target, keywords, delta = instance
        tables, index = prepared(graph)
        query = KORQuery(source, target, keywords, delta)
        epsilon = 0.5
        exact = branch_and_bound(graph, tables, index, query)
        result = bucket_bound(graph, tables, index, query, epsilon=epsilon, beta=beta)
        if not exact.feasible:
            assert not result.feasible
            return
        assert result.feasible
        assert result.route.covers(graph, keywords)
        assert result.route.budget_score <= delta + 1e-9
        assert (
            result.route.objective_score
            <= exact.route.objective_score * beta / (1 - epsilon) + 1e-9
        )

    @SLOW
    @given(graph_and_query())
    def test_exact_route_is_truly_feasible_and_minimal(self, instance):
        """Branch-and-bound vs a tiny exhaustive enumeration.

        Walk enumeration is exponential in Delta/b_min (the very reason
        the paper needs approximation algorithms), so instances too big
        for the oracle are discarded rather than failed.
        """
        from hypothesis import assume

        from repro.core.bruteforce import exhaustive_search

        graph, source, target, keywords, delta = instance
        tables, index = prepared(graph)
        query = KORQuery(source, target, keywords, delta)
        exact = branch_and_bound(graph, tables, index, query)
        try:
            brute = exhaustive_search(graph, index, query, max_expansions=200_000)
        except RuntimeError:
            assume(False)  # oracle blew its budget; not a counterexample
            return
        assert exact.feasible == brute.feasible
        if exact.feasible:
            assert exact.route.objective_score <= brute.route.objective_score + 1e-9
            assert brute.route.objective_score <= exact.route.objective_score + 1e-9


class TestGreedyContract:
    @SLOW
    @given(graph_and_query())
    def test_greedy_coverage_mode_covers_or_fails(self, instance):
        from repro.core.greedy import greedy

        graph, source, target, keywords, delta = instance
        tables, index = prepared(graph)
        query = KORQuery(source, target, keywords, delta)
        result = greedy(graph, tables, index, query)
        if result.found:
            # Coverage mode: the returned route must genuinely cover.
            assert result.covers_keywords == result.route.covers(graph, keywords)
            assert result.route.source == source
            assert result.route.target == target

    @SLOW
    @given(graph_and_query())
    def test_greedy_budget_mode_respects_delta(self, instance):
        from repro.core.greedy import greedy

        graph, source, target, keywords, delta = instance
        tables, index = prepared(graph)
        query = KORQuery(source, target, keywords, delta)
        result = greedy(graph, tables, index, query, mode="budget")
        if result.found:
            assert result.route.budget_score <= delta + 1e-9
