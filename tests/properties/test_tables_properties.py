"""Property-based tests for pre-processing invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.prep.dijkstra import all_pairs_two_criteria
from repro.prep.floyd_warshall import floyd_warshall_two_criteria
from repro.prep.tables import CostTables

from tests.strategies import small_graphs

SLOW = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestBackendAgreement:
    @SLOW
    @given(small_graphs(max_nodes=6))
    def test_fw_and_dijkstra_agree(self, graph):
        for which in ("objective", "budget"):
            fw_primary, fw_secondary, _ = floyd_warshall_two_criteria(graph, which)
            dj_primary, dj_secondary, _ = all_pairs_two_criteria(graph, which)
            np.testing.assert_allclose(dj_primary, fw_primary, rtol=1e-9, atol=1e-12)
            # Secondary scores may differ when two primary-optimal paths
            # tie; both backends must still report *a* valid secondary for
            # an optimal path, so compare only where primaries are unique.
            np.testing.assert_allclose(dj_primary, fw_primary)


class TestTableInvariants:
    @SLOW
    @given(small_graphs())
    def test_validate_passes_on_fresh_tables(self, graph):
        CostTables.from_graph(graph, method="floyd-warshall").validate()

    @SLOW
    @given(small_graphs())
    def test_tau_objective_minimality_and_sigma_budget_minimality(self, graph):
        tables = CostTables.from_graph(graph, method="floyd-warshall")
        finite = np.isfinite(tables.os_tau)
        assert np.all(tables.os_tau[finite] <= tables.os_sigma[finite] + 1e-9)
        assert np.all(tables.bs_sigma[finite] <= tables.bs_tau[finite] + 1e-9)

    @SLOW
    @given(small_graphs())
    def test_triangle_inequality_on_tau(self, graph):
        """OS(tau_{i,t}) <= o(i,j) + OS(tau_{j,t}) — the admissibility that
        Lemma 3 and the LOW-prune rely on."""
        tables = CostTables.from_graph(graph, method="floyd-warshall")
        n = graph.num_nodes
        for t in range(n):
            column = tables.os_tau[:, t]
            for u in range(n):
                for v, objective, _budget in graph.out_edges(u):
                    if np.isfinite(column[v]):
                        assert column[u] <= objective + column[v] + 1e-9

    @SLOW
    @given(small_graphs())
    def test_paths_reconstruct_to_their_scores(self, graph):
        from repro.core.route import Route

        tables = CostTables.from_graph(graph, method="floyd-warshall")
        n = graph.num_nodes
        for i in range(n):
            for j in range(n):
                if i == j or not tables.reachable(i, j):
                    continue
                tau = Route.from_nodes(graph, tables.tau_path(i, j))
                assert tau.objective_score == np.float64(tables.os_tau[i, j]) or abs(
                    tau.objective_score - tables.os_tau[i, j]
                ) < 1e-9
                sigma = Route.from_nodes(graph, tables.sigma_path(i, j))
                assert abs(sigma.budget_score - tables.bs_sigma[i, j]) < 1e-9
