"""Property-based tests for partitioned pre-processing."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.prep.partition import PartitionedCostTables, partition_graph
from repro.prep.tables import CostTables

from tests.strategies import small_graphs

SLOW = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestPartitionInvariants:
    @SLOW
    @given(small_graphs(min_nodes=4, max_nodes=7), st.integers(2, 3))
    def test_cells_partition_the_node_set(self, graph, cells):
        partition = partition_graph(graph, cells)
        seen = sorted(v for cell in partition.cells for v in cell)
        assert seen == list(range(graph.num_nodes))

    @SLOW
    @given(small_graphs(min_nodes=4, max_nodes=7), st.integers(2, 3))
    def test_assembled_scores_are_sound_upper_bounds(self, graph, cells):
        """Partitioned scores never undercut the flat optimum, and agree
        exactly on reachability within assembled routes."""
        partitioned = PartitionedCostTables.from_graph(graph, num_cells=cells, seed=0)
        flat = CostTables.from_graph(graph, predecessors=False)
        n = graph.num_nodes
        for t in range(n):
            for kind, column, reference in (
                ("tau", partitioned.os_tau_col(t), flat.os_tau_col(t)),
                ("sigma", partitioned.bs_sigma_col(t), flat.bs_sigma_col(t)),
            ):
                finite = np.isfinite(reference)
                assert np.all(column[finite] >= reference[finite] - 1e-9), kind
                # Anything the partitioned tables claim reachable must be.
                assert np.all(np.isfinite(column) <= finite | np.isinf(column))
