"""Property-based tests for label domination and label stores."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.label import Label, LabelStore

label_tuples = st.tuples(
    st.integers(0, 7),  # mask
    st.integers(0, 50),  # scaled_os
    st.integers(0, 50),  # bs
)


def make(node, mask, sos, bs):
    return Label(node=node, mask=mask, scaled_os=float(sos), os=float(sos), bs=float(bs))


class TestDominationIsAPartialOrder:
    @given(label_tuples)
    def test_reflexive(self, t):
        label = make(0, *t)
        assert label.dominates(label)

    @given(label_tuples, label_tuples)
    def test_antisymmetric_up_to_score_equality(self, a, b):
        la, lb = make(0, *a), make(0, *b)
        if la.dominates(lb) and lb.dominates(la):
            assert a == b

    @given(label_tuples, label_tuples, label_tuples)
    def test_transitive(self, a, b, c):
        la, lb, lc = make(0, *a), make(0, *b), make(0, *c)
        if la.dominates(lb) and lb.dominates(lc):
            assert la.dominates(lc)


class TestStoreMaintainsSkyline:
    @settings(max_examples=60)
    @given(st.lists(label_tuples, min_size=1, max_size=30))
    def test_no_stored_label_dominates_another(self, tuples):
        store = LabelStore(num_nodes=1)
        for t in tuples:
            label = make(0, *t)
            if not store.is_dominated(label):
                store.insert(label)
        alive = list(store.labels_at(0))
        for a in alive:
            for b in alive:
                if a is not b:
                    assert not a.dominates(b) or (
                        a.mask == b.mask and a.scaled_os == b.scaled_os and a.bs == b.bs
                    )

    @settings(max_examples=60)
    @given(st.lists(label_tuples, min_size=1, max_size=30))
    def test_every_input_dominated_by_some_survivor(self, tuples):
        """The skyline must still cover everything that was inserted."""
        store = LabelStore(num_nodes=1)
        accepted = []
        for t in tuples:
            label = make(0, *t)
            if not store.is_dominated(label):
                store.insert(label)
            accepted.append(label)
        alive = list(store.labels_at(0))
        for label in accepted:
            assert any(s.dominates(label) for s in alive)

    @settings(max_examples=40)
    @given(st.lists(label_tuples, min_size=1, max_size=25), st.integers(2, 3))
    def test_k_store_keeps_at_most_k_mutually_dominating(self, tuples, k):
        """With k-domination, any label is dominated by < k stored ones."""
        store = LabelStore(num_nodes=1, k=k)
        for t in tuples:
            label = make(0, *t)
            if not store.is_dominated(label):
                store.insert(label)
        alive = list(store.labels_at(0))
        for label in alive:
            dominators = sum(
                1 for other in alive if other is not label and other.dominates(label)
            )
            assert dominators < k
