"""Property-based tests: the B+-tree behaves like a sorted dict."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree
from repro.index.buffer import BufferPool
from repro.index.pages import PageStore

keys = st.binary(min_size=1, max_size=12)
values = st.binary(min_size=0, max_size=20)

SLOW = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def make_tree() -> BPlusTree:
    return BPlusTree(BufferPool(PageStore(page_size=128), capacity=8))


class TestAgainstDictModel:
    @SLOW
    @given(st.lists(st.tuples(keys, values), max_size=60))
    def test_inserts_match_dict(self, items):
        tree = make_tree()
        model: dict[bytes, bytes] = {}
        for key, value in items:
            tree.insert(key, value)
            model[key] = value
        for key, value in model.items():
            assert tree.get(key) == value
        assert [k for k, _v in tree.items()] == sorted(model)

    @SLOW
    @given(
        st.lists(st.tuples(keys, values), max_size=40),
        st.lists(keys, max_size=15),
    )
    def test_mixed_inserts_and_deletes_match_dict(self, items, deletions):
        tree = make_tree()
        model: dict[bytes, bytes] = {}
        for key, value in items:
            tree.insert(key, value)
            model[key] = value
        for key in deletions:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        for key, value in model.items():
            assert tree.get(key) == value
        for key in deletions:
            if key not in model:
                assert tree.get(key) is None

    @SLOW
    @given(st.lists(st.tuples(keys, values), max_size=40), keys, keys)
    def test_range_scan_matches_dict(self, items, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        tree = make_tree()
        model: dict[bytes, bytes] = {}
        for key, value in items:
            tree.insert(key, value)
            model[key] = value
        expected = sorted(k for k in model if lo <= k < hi)
        assert [k for k, _v in tree.range(lo, hi)] == expected
