"""Property-based tests for the KkR top-k extension."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.query import KORQuery
from repro.core.topk import bucket_bound_top_k, os_scaling_top_k
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables

from tests.strategies import graph_and_query

SLOW = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestTopKInvariants:
    @SLOW
    @given(graph_and_query(), st.integers(1, 4))
    def test_osscaling_topk_routes_valid(self, instance, k):
        graph, source, target, keywords, delta = instance
        tables = CostTables.from_graph(graph, method="floyd-warshall")
        index = InvertedIndex.from_graph(graph)
        result = os_scaling_top_k(
            graph, tables, index, KORQuery(source, target, keywords, delta), k=k
        )
        assert len(result.routes) <= k
        scores = result.objective_scores
        assert scores == sorted(scores)
        assert len({r.nodes for r in result.routes}) == len(result.routes)
        for route in result.routes:
            assert route.covers(graph, keywords)
            assert route.budget_score <= delta + 1e-9
            assert route.source == source and route.target == target

    @SLOW
    @given(graph_and_query(), st.integers(1, 4))
    def test_bucketbound_topk_routes_valid(self, instance, k):
        graph, source, target, keywords, delta = instance
        tables = CostTables.from_graph(graph, method="floyd-warshall")
        index = InvertedIndex.from_graph(graph)
        result = bucket_bound_top_k(
            graph, tables, index, KORQuery(source, target, keywords, delta), k=k
        )
        assert len(result.routes) <= k
        for route in result.routes:
            assert route.covers(graph, keywords)
            assert route.budget_score <= delta + 1e-9

    @SLOW
    @given(graph_and_query())
    def test_top1_feasibility_agrees_with_top1_search(self, instance):
        from repro.core.osscaling import os_scaling

        graph, source, target, keywords, delta = instance
        tables = CostTables.from_graph(graph, method="floyd-warshall")
        index = InvertedIndex.from_graph(graph)
        query = KORQuery(source, target, keywords, delta)
        top1 = os_scaling(graph, tables, index, query)
        topk = os_scaling_top_k(graph, tables, index, query, k=1)
        assert top1.feasible == bool(topk.routes)
