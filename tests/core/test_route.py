"""Tests for route value objects (Definitions 2-3)."""

import pytest

from repro.core.route import Route
from repro.exceptions import GraphError
from repro.graph.generators import figure_1_graph


@pytest.fixture(scope="module")
def graph():
    return figure_1_graph()


class TestScoring:
    def test_definition3_example(self, graph):
        """OS(<v0,v3,v5,v7>) = 9, BS = 5 — the paper's Definition-3 example."""
        route = Route.from_nodes(graph, [0, 3, 5, 7])
        assert route.objective_score == 9.0
        assert route.budget_score == 5.0

    def test_single_node_route(self, graph):
        route = Route.from_nodes(graph, [4])
        assert route.objective_score == 0.0
        assert route.budget_score == 0.0
        assert route.num_edges == 0

    def test_walks_may_repeat_nodes(self, graph):
        """Routes are walks: the paper notes simple paths are not enough."""
        route = Route.from_nodes(graph, [3, 1, 4, 7])  # fine: a simple path
        walk = Route.from_nodes(graph, [0, 3, 5, 4, 7])
        assert walk.num_edges == 4
        assert route.num_edges == 3

    def test_non_edge_rejected(self, graph):
        with pytest.raises(GraphError):
            Route.from_nodes(graph, [0, 7])

    def test_empty_route_rejected(self, graph):
        with pytest.raises(GraphError, match="at least one node"):
            Route.from_nodes(graph, [])

    def test_endpoints(self, graph):
        route = Route.from_nodes(graph, [0, 3, 4, 7])
        assert route.source == 0
        assert route.target == 7


class TestCoverage:
    def test_covered_keywords(self, graph):
        route = Route.from_nodes(graph, [0, 3, 4, 7])
        words = route.covered_keyword_strings(graph)
        assert words == frozenset({"t3", "t1", "t4", "t2"})

    def test_covers(self, graph):
        route = Route.from_nodes(graph, [0, 3, 4, 7])
        assert route.covers(graph, ("t1", "t2", "t3"))
        assert not route.covers(graph, ("t5",))

    def test_covers_unknown_keyword_is_false(self, graph):
        route = Route.from_nodes(graph, [0, 3])
        assert not route.covers(graph, ("ghost",))

    def test_describe_mentions_names_and_scores(self, graph):
        text = Route.from_nodes(graph, [0, 3, 4, 7]).describe(graph)
        assert "v0 -> v3 -> v4 -> v7" in text
        assert "OS=4" in text and "BS=7" in text
