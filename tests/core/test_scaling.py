"""Tests for objective scaling (Section 3.2)."""

import math

import pytest

from repro.core.scaling import ScalingContext
from repro.exceptions import QueryError
from repro.graph.generators import figure_1_graph


@pytest.fixture(scope="module")
def graph():
    return figure_1_graph()


class TestTheta:
    def test_example1_theta(self, graph):
        """Example 1: Delta=10, eps=0.5 => theta = 0.5*o_min*b_min/10 = 1/20."""
        scaling = ScalingContext.for_query(graph, 10.0, 0.5)
        assert scaling.theta == pytest.approx(1 / 20)

    def test_example1_edge_scaling(self, graph):
        """'the objective value of each edge is scaled to 20 times its value'."""
        scaling = ScalingContext.for_query(graph, 10.0, 0.5)
        for edge in graph.iter_edges():
            assert scaling.scale(edge.objective) == pytest.approx(edge.objective * 20)

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 2.0])
    def test_epsilon_out_of_range_rejected(self, graph, eps):
        with pytest.raises(QueryError, match="epsilon"):
            ScalingContext.for_query(graph, 10.0, eps)

    def test_scale_is_floor(self, graph):
        scaling = ScalingContext.for_query(graph, 10.0, 0.5)  # theta = 0.05
        assert scaling.scale(0.07) == 1.0
        assert scaling.scale(0.1499) == 2.0

    def test_scaled_values_are_integral(self, graph):
        scaling = ScalingContext.for_query(graph, 7.3, 0.37)
        for value in (0.013, 1.7, 2.9999, 42.0):
            assert scaling.scale(value) == math.floor(value / scaling.theta + 1e-9)


class TestExactMode:
    def test_identity_scale(self, graph):
        scaling = ScalingContext.for_query(graph, 10.0, 0.5, exact=True)
        assert scaling.exact
        assert scaling.scale(3.14159) == 3.14159

    def test_ratio_one(self, graph):
        scaling = ScalingContext.for_query(graph, 10.0, 0.5, exact=True)
        assert scaling.approximation_ratio() == 1.0

    def test_label_bound_infinite(self, graph):
        scaling = ScalingContext.for_query(graph, 10.0, 0.5, exact=True)
        assert scaling.label_bound(graph, 10.0, 2) == math.inf


class TestBounds:
    def test_theorem2_ratio(self, graph):
        assert ScalingContext.for_query(graph, 10.0, 0.5).approximation_ratio() == 2.0
        assert ScalingContext.for_query(graph, 10.0, 0.9).approximation_ratio() == pytest.approx(10.0)

    def test_lemma1_label_bound(self, graph):
        """2^m * floor(Delta/b_min) * floor(o_max*Delta/(eps*o_min*b_min))."""
        scaling = ScalingContext.for_query(graph, 10.0, 0.5)
        m = 2
        expected = (
            2**m
            * math.floor(10.0 / graph.min_budget)
            * math.floor(graph.max_objective / scaling.theta + 1e-9)
        )
        assert scaling.label_bound(graph, 10.0, m) == expected

    def test_label_bound_shrinks_with_epsilon(self, graph):
        loose = ScalingContext.for_query(graph, 10.0, 0.1).label_bound(graph, 10.0, 2)
        tight = ScalingContext.for_query(graph, 10.0, 0.9).label_bound(graph, 10.0, 2)
        assert tight < loose
