"""Tests for labels, domination, and label stores (Definitions 5-8)."""

import pytest

from repro.core.label import Label, LabelStore, label_sort_key


def make_label(node=0, mask=0, scaled_os=0.0, os=0.0, bs=0.0):
    return Label(node=node, mask=mask, scaled_os=scaled_os, os=os, bs=bs)


class TestDomination:
    """Definition 6: superset keywords, both scores no larger."""

    def test_dominates_with_equal_scores(self):
        a = make_label(mask=0b11, scaled_os=5, bs=5)
        b = make_label(mask=0b01, scaled_os=5, bs=5)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_smaller_scores_dominate(self):
        a = make_label(mask=0b1, scaled_os=4, bs=4)
        b = make_label(mask=0b1, scaled_os=5, bs=5)
        assert a.dominates(b)

    def test_incomparable_masks(self):
        a = make_label(mask=0b01, scaled_os=1, bs=1)
        b = make_label(mask=0b10, scaled_os=9, bs=9)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_score_tradeoff_blocks_domination(self):
        a = make_label(mask=0b1, scaled_os=1, bs=9)
        b = make_label(mask=0b1, scaled_os=9, bs=1)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_self_domination(self):
        a = make_label(mask=0b1, scaled_os=1, bs=1)
        assert a.dominates(a)

    def test_example1_domination(self):
        """Example 1: L04 = (.., 100, 5, 7) dominates L14 = (.., 120, 6, 11)."""
        l0 = make_label(node=4, mask=0b111, scaled_os=100, os=5, bs=7)
        l1 = make_label(node=4, mask=0b111, scaled_os=120, os=6, bs=11)
        assert l0.dominates(l1)


class TestLabelOrder:
    """Definition 8: more keywords first, then scaled OS, then BS."""

    def test_more_keywords_first(self):
        rich = make_label(mask=0b111, scaled_os=100, bs=100)
        poor = make_label(mask=0b001, scaled_os=1, bs=1)
        assert label_sort_key(rich) < label_sort_key(poor)

    def test_scaled_os_breaks_keyword_ties(self):
        a = make_label(mask=0b01, scaled_os=10, bs=9)
        b = make_label(mask=0b10, scaled_os=20, bs=1)
        assert label_sort_key(a) < label_sort_key(b)

    def test_budget_breaks_os_ties(self):
        a = make_label(mask=0b1, scaled_os=10, bs=1)
        b = make_label(mask=0b1, scaled_os=10, bs=2)
        assert label_sort_key(a) < label_sort_key(b)

    def test_creation_order_makes_key_total(self):
        a = make_label(mask=0b1, scaled_os=10, bs=1)
        b = make_label(mask=0b1, scaled_os=10, bs=1)
        assert label_sort_key(a) != label_sort_key(b)
        assert label_sort_key(a) < label_sort_key(b)  # a created first


class TestChain:
    def test_chain_nodes_root_to_leaf(self):
        root = make_label(node=0)
        mid = Label(node=3, mask=1, scaled_os=1, os=1, bs=1, parent=root)
        leaf = Label(node=7, mask=3, scaled_os=2, os=2, bs=2, parent=mid)
        assert [node for node, _via in leaf.chain_nodes()] == [0, 3, 7]


class TestLabelStore:
    def test_insert_and_query(self):
        store = LabelStore(num_nodes=4)
        label = make_label(node=2, mask=0b1, scaled_os=5, bs=5)
        store.insert(label)
        assert len(store) == 1
        assert list(store.labels_at(2)) == [label]
        assert list(store.labels_at(0)) == []

    def test_is_dominated(self):
        store = LabelStore(num_nodes=4)
        store.insert(make_label(node=1, mask=0b11, scaled_os=5, bs=5))
        assert store.is_dominated(make_label(node=1, mask=0b01, scaled_os=6, bs=6))
        assert not store.is_dominated(make_label(node=1, mask=0b01, scaled_os=4, bs=6))
        # Same scores at a different node: unrelated.
        assert not store.is_dominated(make_label(node=2, mask=0b01, scaled_os=6, bs=6))

    def test_insert_evicts_dominated(self):
        store = LabelStore(num_nodes=4)
        weak = make_label(node=1, mask=0b01, scaled_os=9, bs=9)
        store.insert(weak)
        strong = make_label(node=1, mask=0b11, scaled_os=1, bs=1)
        evicted = []
        store.insert(strong, on_evict=evicted.append)
        assert evicted == [weak]
        assert not weak.alive
        assert list(store.labels_at(1)) == [strong]

    def test_skyline_of_incomparable_labels(self):
        store = LabelStore(num_nodes=2)
        labels = [
            make_label(node=0, mask=0b1, scaled_os=1, bs=9),
            make_label(node=0, mask=0b1, scaled_os=5, bs=5),
            make_label(node=0, mask=0b1, scaled_os=9, bs=1),
        ]
        for label in labels:
            store.insert(label)
        assert len(store) == 3

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            LabelStore(num_nodes=1, k=0)


class TestKDomination:
    """Section 3.5: a label dies only when k stored labels dominate it."""

    def test_needs_k_dominators(self):
        store = LabelStore(num_nodes=2, k=2)
        store.insert(make_label(node=0, mask=0b1, scaled_os=1, bs=1))
        candidate = make_label(node=0, mask=0b1, scaled_os=5, bs=5)
        assert not store.is_dominated(candidate)  # only one dominator
        store.insert(make_label(node=0, mask=0b1, scaled_os=2, bs=2))
        assert store.is_dominated(candidate)  # now two

    def test_eviction_needs_k_dominators(self):
        store = LabelStore(num_nodes=2, k=2)
        weak = make_label(node=0, mask=0b1, scaled_os=9, bs=9)
        store.insert(weak)
        store.insert(make_label(node=0, mask=0b1, scaled_os=1, bs=1))
        assert weak.alive  # one dominator is not enough at k=2
        store.insert(make_label(node=0, mask=0b1, scaled_os=2, bs=2))
        assert not weak.alive  # second dominator arrived

    def test_k1_matches_definition6(self):
        store = LabelStore(num_nodes=2, k=1)
        weak = make_label(node=0, mask=0b1, scaled_os=9, bs=9)
        store.insert(weak)
        store.insert(make_label(node=0, mask=0b1, scaled_os=1, bs=1))
        assert not weak.alive
