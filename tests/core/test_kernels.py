"""Differential sweep for the numpy batch kernels.

The contract of :mod:`repro.core.kernels` is *fingerprint identity*: a
wave run through the lockstep kernel must produce the same routes,
scores, failure reasons **and per-label statistics** as N independent
scalar runs — for every algorithm, on randomized instances.  These
tests pin that, plus the two scalar/vector unification fixes that ride
along: the canonical domination comparator (equal-score ties must
resolve identically on both paths) and BucketBound's deterministic
bucket-edge indexing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucketbound import BucketQueue
from repro.core.engine import ALGORITHMS
from repro.core.kernels import (
    KERNEL_WAVE_ALGORITHMS,
    KernelContext,
    dominates_scores_block,
    run_wave,
)
from repro.core.label import dominates_scores
from repro.exceptions import QueryError

from tests.service.test_differential import fingerprint, random_instance

#: Stats fields the kernel must reproduce exactly (runtime excluded:
#: wall time legitimately differs between the two paths).
STAT_FIELDS = (
    "labels_created",
    "labels_enqueued",
    "labels_pruned_budget",
    "labels_pruned_bound",
    "labels_pruned_dominated",
    "labels_pruned_strategy2",
    "labels_evicted",
    "jump_labels_created",
    "loops",
    "bound_updates",
    "buckets_opened",
)

ALGO_PARAMS = {
    "osscaling": {},
    "bucketbound": {},
    "greedy": {},
    "greedy2": {},
    "exact": {},
    "exhaustive": {},
}


def scalar_outcomes(engine, queries, algorithm, params):
    outcomes = []
    for query in queries:
        try:
            result = engine.run(query, algorithm=algorithm, **params)
        except Exception as error:  # noqa: BLE001 - mirrored per slot
            outcomes.append(("error", type(error).__name__))
        else:
            outcomes.append(
                ("ok", fingerprint(result), tuple(getattr(result.stats, f) for f in STAT_FIELDS))
            )
    return outcomes


def wave_outcomes(engine, queries, algorithm, params, **kwargs):
    outcomes = []
    for member in run_wave(engine, queries, algorithm, params, **kwargs):
        if member.error is not None:
            outcomes.append(("error", type(member.error).__name__))
        else:
            result = member.result
            outcomes.append(
                ("ok", fingerprint(result), tuple(getattr(result.stats, f) for f in STAT_FIELDS))
            )
    return outcomes


class TestWaveDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_wave_matches_scalar(self, algorithm):
        """Fingerprints and all per-label counters, 8 seeded instances."""
        params = ALGO_PARAMS[algorithm]
        for seed in range(8):
            engine, queries = random_instance(seed)
            expected = scalar_outcomes(engine, queries, algorithm, params)
            got = wave_outcomes(engine, queries, algorithm, params)
            assert got == expected, f"seed={seed} algorithm={algorithm}"

    @pytest.mark.parametrize("algorithm", sorted(KERNEL_WAVE_ALGORITHMS))
    def test_wave_matches_scalar_with_strategies_off(self, algorithm):
        params = {"use_strategy1": False, "use_strategy2": False}
        for seed in range(4):
            engine, queries = random_instance(seed)
            expected = scalar_outcomes(engine, queries, algorithm, params)
            got = wave_outcomes(engine, queries, algorithm, params)
            assert got == expected, f"seed={seed} algorithm={algorithm}"

    def test_warm_kernel_context_stays_identical(self):
        """A reused KernelContext (warm caches) must change nothing."""
        engine, queries = random_instance(2)
        kctx = KernelContext(engine.graph, engine.tables)
        first = wave_outcomes(engine, queries, "osscaling", {}, kernel_context=kctx)
        second = wave_outcomes(engine, queries, "osscaling", {}, kernel_context=kctx)
        assert first == second == scalar_outcomes(engine, queries, "osscaling", {})

    def test_single_member_wave_matches_scalar(self):
        """One-query waves take the per-member path; still identical."""
        engine, queries = random_instance(3)
        for query in queries[:3]:
            assert wave_outcomes(engine, [query], "bucketbound", {}) == scalar_outcomes(
                engine, [query], "bucketbound", {}
            )

    def test_unknown_parameter_fails_like_solo_runs(self):
        """Parameter-surface parity: a bogus kwarg errors each member
        with the same exception type N solo runs would raise."""
        engine, queries = random_instance(1)
        expected = scalar_outcomes(engine, queries, "osscaling", {"bogus": 1})
        got = wave_outcomes(engine, queries, "osscaling", {"bogus": 1})
        assert got == expected
        assert all(kind == "error" for kind, *_ in got)

    def test_proxy_engine_runs_per_member(self):
        """An engine whose ``run`` is overridden (test doubles, delay
        wrappers) must have it *called*: the lockstep driver bypasses
        ``run``, so such engines fall back to the per-member loop."""
        engine, queries = random_instance(5)

        class CountingEngine:
            def __init__(self, inner):
                self._inner = inner
                self.runs = 0

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def run(self, *args, **kwargs):
                self.runs += 1
                return self._inner.run(*args, **kwargs)

        proxy = CountingEngine(engine)
        got = wave_outcomes(proxy, queries, "osscaling", {})
        assert proxy.runs == len(queries)
        assert got == scalar_outcomes(engine, queries, "osscaling", {})

    def test_poisoned_member_is_contained(self):
        """One unbindable query errors its slot; survivors are exact."""
        from repro.core.query import KORQuery

        engine, queries = random_instance(4)
        bad = KORQuery(9_999, queries[0].target, queries[0].keywords, 5.0)
        wave = list(queries[:3]) + [bad] + list(queries[3:6])
        outcomes = run_wave(engine, wave, "bucketbound", {})
        assert isinstance(outcomes[3].error, QueryError)
        expected = scalar_outcomes(engine, queries[:3] + queries[3:6], "bucketbound", {})
        survivors = [o for i, o in enumerate(outcomes) if i != 3]
        got = [
            ("ok", fingerprint(o.result), tuple(getattr(o.result.stats, f) for f in STAT_FIELDS))
            for o in survivors
        ]
        assert got == expected


class _CountdownDeadline:
    """Deadline stub expiring on its Nth check — deterministic mid-wave
    expiry, independent of wall clock."""

    def __init__(self, checks: int) -> None:
        self.checks = checks

    def check(self) -> None:
        from repro.exceptions import DeadlineExceeded

        self.checks -= 1
        if self.checks < 0:
            raise DeadlineExceeded("countdown expired")

    def remaining(self) -> float:
        return float("inf") if self.checks >= 0 else 0.0


class TestWaveDeadline:
    def test_mid_wave_expiry_errors_unfinished_members_only(self):
        """The lockstep driver checks the deadline once per step: expiry
        mid-wave must error every *unfinished* member promptly while
        members that already finished keep their results."""
        from repro.exceptions import DeadlineExceeded

        engine, queries = random_instance(0)
        # Generous budget first: count how many checks a full wave needs.
        probe = _CountdownDeadline(10_000)
        clean = run_wave(engine, queries, "osscaling", {}, deadline=probe)
        assert all(o.error is None or not isinstance(o.error, DeadlineExceeded) for o in clean)
        used = 10_000 - probe.checks
        assert used > len(queries), "wave must check the deadline per lockstep step"

        # Now expire partway through the lockstep loop.
        mid = _CountdownDeadline(len(queries) + (used - len(queries)) // 2)
        outcomes = run_wave(engine, queries, "osscaling", {}, deadline=mid)
        expired = [o for o in outcomes if isinstance(o.error, DeadlineExceeded)]
        finished = [o for o in outcomes if o.error is None]
        assert expired, "some member must have been cut off mid-wave"
        assert len(expired) + len(finished) == len(outcomes)
        # Finished members are still exact.
        scalar = scalar_outcomes(engine, queries, "osscaling", {})
        for i, o in enumerate(outcomes):
            if o.error is None:
                assert ("ok", fingerprint(o.result)) == scalar[i][:2]

    def test_pre_expired_deadline_errors_every_member(self):
        from repro.exceptions import DeadlineExceeded

        engine, queries = random_instance(1)
        outcomes = run_wave(engine, queries, "bucketbound", {}, deadline=_CountdownDeadline(0))
        assert all(isinstance(o.error, DeadlineExceeded) for o in outcomes)


# ----------------------------------------------------------------------
# Satellite 1: one canonical domination comparator, scalar == vector
# ----------------------------------------------------------------------

# A tiny float pool forces equal-score/equal-budget collisions — the
# tie-breaking cases where a drifted comparator pair would diverge.
TIE_FLOATS = st.sampled_from([0.0, 1.0, 1.5, 2.0, 2.0 + 1e-9, 3.0, float("inf")])


class TestDominationComparator:
    @given(
        pairs=st.lists(st.tuples(TIE_FLOATS, TIE_FLOATS), min_size=1, max_size=16),
        sos=TIE_FLOATS,
        bs=TIE_FLOATS,
    )
    @settings(max_examples=300, deadline=None)
    def test_scalar_and_vector_agree(self, pairs, sos, bs):
        sos_arr = np.array([p[0] for p in pairs], dtype=np.float64)
        bs_arr = np.array([p[1] for p in pairs], dtype=np.float64)
        vector = dominates_scores_block(sos_arr, bs_arr, sos, bs)
        scalar = [dominates_scores(p[0], p[1], sos, bs) for p in pairs]
        assert vector.tolist() == scalar

    @given(sos=TIE_FLOATS, bs=TIE_FLOATS)
    @settings(max_examples=50, deadline=None)
    def test_equal_scores_dominate_both_ways(self, sos, bs):
        """Non-strict comparator: exact ties dominate symmetrically, so
        neither path can keep a duplicate the other would drop."""
        assert dominates_scores(sos, bs, sos, bs)
        assert dominates_scores_block(
            np.array([sos]), np.array([bs]), sos, bs
        ).tolist() == [True]

    def test_label_dominates_uses_the_canonical_comparator(self):
        from repro.core.label import Label, VIA_ROOT

        a = Label(node=0, mask=0b11, scaled_os=1.0, os=1.0, bs=2.0, parent=None, via=VIA_ROOT)
        b = Label(node=0, mask=0b01, scaled_os=1.0, os=1.0, bs=2.0, parent=None, via=VIA_ROOT)
        assert a.dominates(b)  # superset mask, tied scores
        assert not b.dominates(a)  # subset mask never dominates


# ----------------------------------------------------------------------
# Satellite 2: BucketQueue edge-value determinism, scalar == vector
# ----------------------------------------------------------------------


class TestBucketIndexDeterminism:
    def test_exact_edge_values_open_their_own_bucket(self):
        """``low == base * beta^k`` (computed exactly as the queue grows
        its edge list) must land in bucket k — the boundary used to
        depend on ``log`` rounding and could go either way."""
        queue = BucketQueue(base=0.5, beta=1.2)
        edge = 0.5
        for k in range(40):
            assert queue.bucket_index(edge) == k, f"edge {k}"
            edge *= 1.2

    def test_scalar_and_vector_indexing_agree(self):
        queue = BucketQueue(base=0.25, beta=1.3)
        rng = np.random.default_rng(7)
        lows = np.concatenate(
            [
                rng.uniform(0.0, 50.0, size=200),
                0.25 * 1.3 ** np.arange(20),  # the exact edges again
            ]
        )
        vector = queue.bucket_indices(lows)
        scalar = [queue.bucket_index(float(low)) for low in lows]
        assert vector.tolist() == scalar

    def test_below_base_clamps_to_zero(self):
        queue = BucketQueue(base=1.0, beta=2.0)
        assert queue.bucket_index(0.0) == 0
        assert queue.bucket_index(-5.0) == 0
        assert queue.bucket_indices(np.array([0.0, -5.0, 1.0])).tolist() == [0, 0, 0]

    def test_non_finite_lows_are_rejected(self):
        queue = BucketQueue(base=1.0, beta=2.0)
        with pytest.raises(ValueError):
            queue.bucket_index(float("inf"))
        with pytest.raises(ValueError):
            queue.bucket_indices(np.array([1.0, float("nan")]))


# ----------------------------------------------------------------------
# the vectorized Strategy-1 jump tail
# ----------------------------------------------------------------------

@st.composite
def _tie_hammered_instance(draw):
    """A small graph whose edge costs mostly collide (weights drawn from
    ``{1.0, 2.0}`` with 1.0 twice as likely), plus 2-5 queries — the
    nastiest regime for the jump argmin, where many candidates share the
    exact same ``BS(sigma)`` and only the tie rule picks the winner."""
    from repro.core.query import KORQuery
    from repro.graph.builder import GraphBuilder

    from tests.strategies import KEYWORD_POOL

    n = draw(st.integers(3, 7))
    builder = GraphBuilder()
    for _ in range(n):
        keywords = draw(
            st.lists(st.sampled_from(KEYWORD_POOL), min_size=0, max_size=2, unique=True)
        )
        builder.add_node(keywords=keywords)
    added = False
    for u in range(n):
        for v in range(n):
            if u != v and draw(st.booleans()):
                objective = draw(st.sampled_from((1.0, 1.0, 2.0)))
                budget = draw(st.sampled_from((1.0, 1.0, 2.0)))
                builder.add_edge(u, v, objective, budget)
                added = True
    if not added:
        builder.add_edge(0, 1, 1.0, 1.0)
    graph = builder.build()

    present = sorted(set(graph.keyword_table.words))
    queries = []
    for _ in range(draw(st.integers(2, 5))):
        keywords = (
            tuple(
                draw(
                    st.lists(
                        st.sampled_from(present), min_size=1, max_size=3, unique=True
                    )
                )
            )
            if present
            else ()
        )
        queries.append(
            KORQuery(
                draw(st.integers(0, n - 1)),
                draw(st.integers(0, n - 1)),
                keywords,
                draw(st.sampled_from((2.0, 4.0, 8.0))),
            )
        )
    return graph, queries


class TestJumpBlockDifferential:
    """``jump_candidates_block`` must equal N independent
    ``jump_candidate`` calls — for every job, at every lockstep step of a
    real wave, under hammered ties."""

    @given(instance=_tie_hammered_instance())
    @settings(max_examples=40, deadline=None)
    def test_block_equals_scalar_under_tie_hammering(self, instance):
        from repro.core import kernels
        from repro.core.engine import KOREngine

        graph, queries = instance
        engine = KOREngine(graph)
        original = kernels.jump_candidates_block

        def verifying(kctx, jobs):
            block = original(kctx, jobs)
            for (search, label), got in zip(jobs, block):
                if not search.use_strategy1 or label.mask == search.full_mask:
                    expected = None
                else:
                    expected = search.ctx.jump_candidate(label)
                assert got == expected, (
                    f"block jump diverged at node {label.node}: "
                    f"{got} != {expected}"
                )
            return block

        kernels.jump_candidates_block = verifying
        try:
            for algorithm in sorted(KERNEL_WAVE_ALGORITHMS):
                got = wave_outcomes(engine, queries, algorithm, {})
                assert got == scalar_outcomes(engine, queries, algorithm, {})
        finally:
            kernels.jump_candidates_block = original

    def test_empty_and_ineligible_jobs_return_none_rows(self):
        """Strategy-1-off members and fully-covered labels yield None
        without touching the tables."""
        from repro.core import kernels
        from repro.core.engine import KOREngine

        engine, queries = random_instance(0)
        kctx = KernelContext(engine.graph, engine.tables)
        assert kernels.jump_candidates_block(kctx, []) == []
