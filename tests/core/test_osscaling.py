"""Tests for Algorithm 1 (repro.core.osscaling)."""

import pytest

from repro.core.osscaling import os_scaling
from repro.core.query import KORQuery
from repro.core.results import SearchTrace


def run(engine, source, target, keywords, delta, **params):
    return os_scaling(
        engine.graph,
        engine.tables,
        engine.index,
        KORQuery(source, target, keywords, delta),
        **params,
    )


class TestFeasibility:
    def test_feasible_query(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t1", "t2"), 10.0)
        assert result.feasible
        assert result.route.covers(fig1_engine.graph, ("t1", "t2"))
        assert result.route.budget_score <= 10.0

    def test_budget_too_tight(self, fig1_engine):
        # BS(sigma_{0,7}) = 5, so Delta = 4 cannot be met at all.
        result = run(fig1_engine, 0, 7, ("t1",), 4.0)
        assert not result.feasible
        assert "exceeds the limit" in result.failure_reason

    def test_keyword_not_in_graph(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("unicorn",), 10.0)
        assert not result.feasible
        assert "not present" in result.failure_reason

    def test_unreachable_target(self, fig1_engine):
        # v7 is a sink: nothing is reachable from it.
        result = run(fig1_engine, 7, 0, ("t1",), 10.0)
        assert not result.feasible
        assert "unreachable" in result.failure_reason

    def test_keywords_reachable_but_budget_for_tour_missing(self, fig1_engine):
        # t5 sits only on v1; visiting it from v0 then reaching v7 costs
        # at least 7 (v0->v1->v7); Delta = 6 kills every such tour.
        result = run(fig1_engine, 0, 7, ("t5",), 6.0)
        assert not result.feasible
        assert result.failure_reason == "no feasible route exists"

    def test_empty_keywords_degenerates_to_wcspp(self, fig1_engine):
        result = run(fig1_engine, 0, 7, (), 6.0)
        assert result.feasible
        # Cheapest-objective route within budget 6: <v0,v3,v5,v7> has BS 5
        # but OS 9; <v0,v1,v7> has BS 7 (too big); best is OS 9? No:
        # <v0,3,5,4,7> OS=8 BS=6 fits. Just assert the constraints hold.
        assert result.route.budget_score <= 6.0

    def test_source_equals_target_covering(self, fig1_engine):
        result = run(fig1_engine, 0, 0, ("t3",), 5.0)
        assert result.feasible
        assert result.route.nodes == (0,)
        assert result.route.objective_score == 0.0


class TestEpsilon:
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 0.9])
    def test_bound_holds_for_every_epsilon(self, fig1_engine, epsilon):
        exact = fig1_engine.query(0, 7, ("t1", "t2", "t3"), 8.0, algorithm="exact")
        result = run(fig1_engine, 0, 7, ("t1", "t2", "t3"), 8.0, epsilon=epsilon)
        assert result.feasible
        assert (
            result.route.objective_score
            <= exact.route.objective_score / (1 - epsilon) + 1e-9
        )

    def test_invalid_epsilon_raises(self, fig1_engine):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            run(fig1_engine, 0, 7, ("t1",), 10.0, epsilon=1.5)


class TestOptimisationStrategies:
    """Both strategies must not change feasibility or violate the bound."""

    @pytest.mark.parametrize("s1,s2", [(True, True), (True, False), (False, True), (False, False)])
    def test_strategies_preserve_result_quality(self, fig1_engine, s1, s2):
        result = run(
            fig1_engine, 0, 7, ("t1", "t2"), 10.0, use_strategy1=s1, use_strategy2=s2
        )
        assert result.feasible
        assert result.route.objective_score == 4.0  # optimum on this instance

    def test_strategy1_creates_jump_labels(self, small_flickr_engine):
        graph = small_flickr_engine.graph
        # Pick a keyword present somewhere, endpoints far apart.
        word = next(iter(graph.node_keyword_strings(0) or graph.node_keyword_strings(1)))
        result = os_scaling(
            graph,
            small_flickr_engine.tables,
            small_flickr_engine.index,
            KORQuery(0, graph.num_nodes - 1, (word,), 50.0),
            use_strategy1=True,
        )
        assert result.stats.jump_labels_created >= 0  # counted, never negative

    def test_strategy2_prunes_on_rare_keywords(self, small_flickr_engine):
        """With a very rare query keyword Strategy 2 must actually fire."""
        graph = small_flickr_engine.graph
        vocabulary = small_flickr_engine.index.vocabulary
        rare = min(
            (kid for kid in range(len(graph.keyword_table)) if vocabulary.document_frequency(kid) > 0),
            key=vocabulary.document_frequency,
        )
        word = graph.keyword_table.word_of(rare)
        query = KORQuery(0, graph.num_nodes - 1, (word,), 4.0)
        with_s2 = os_scaling(
            graph, small_flickr_engine.tables, small_flickr_engine.index, query,
            use_strategy2=True,
        )
        without_s2 = os_scaling(
            graph, small_flickr_engine.tables, small_flickr_engine.index, query,
            use_strategy2=False,
        )
        assert with_s2.feasible == without_s2.feasible
        if with_s2.feasible:
            assert with_s2.route.objective_score == pytest.approx(
                without_s2.route.objective_score, rel=0.5
            )


class TestStats:
    def test_counters_populated(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t1", "t2"), 10.0)
        assert result.stats.labels_created > 0
        assert result.stats.loops > 0
        assert result.stats.runtime_seconds > 0

    def test_trace_records_dequeues(self, fig1_engine):
        trace = SearchTrace()
        run(fig1_engine, 0, 7, ("t1", "t2"), 10.0, trace=trace)
        assert trace.of_kind("dequeue")
        assert trace.of_kind("create")
