"""End-to-end pins of every worked example in the paper.

These are the strongest correctness anchors of the reproduction: the
Section-2 queries, Example 1's scaling, and Example 2 / Table 1's label
trace all evaluate on the reconstructed Figure-1 graph.  Two documented
errata in the paper's own examples are covered in
``repro.graph.generators``'s module docstring.
"""

import pytest

from repro.core.engine import ALGORITHMS
from repro.core.osscaling import os_scaling
from repro.core.results import SearchTrace


class TestSection2Queries:
    """Q = <v0, v7, {t1,t2,t3}, Delta> with Delta = 8 and Delta = 6."""

    @pytest.mark.parametrize("algorithm", ["osscaling", "bucketbound", "exact", "exhaustive"])
    def test_delta8_optimum(self, fig1_engine, algorithm):
        result = fig1_engine.query(0, 7, ["t1", "t2", "t3"], 8.0, algorithm=algorithm)
        assert result.feasible
        assert result.route.nodes == (0, 3, 4, 7)
        assert result.route.objective_score == 4.0
        assert result.route.budget_score == 7.0

    @pytest.mark.parametrize("algorithm", ["osscaling", "bucketbound", "exact", "exhaustive"])
    def test_delta6_optimum(self, fig1_engine, algorithm):
        result = fig1_engine.query(0, 7, ["t1", "t2", "t3"], 6.0, algorithm=algorithm)
        assert result.feasible
        assert result.route.nodes == (0, 3, 5, 7)
        assert result.route.objective_score == 9.0
        assert result.route.budget_score == 5.0

    def test_greedy_on_section2_query(self, fig1_engine):
        result = fig1_engine.query(0, 7, ["t1", "t2", "t3"], 8.0, algorithm="greedy")
        assert result.found
        assert result.covers_keywords  # coverage mode always covers


class TestTable1:
    """Example 2: Q = <v0, v7, {t1,t2}, 10>, eps = 0.5 — exact label trace.

    Masks use bit 0 = t1, bit 1 = t2 (query keyword order).  The trace is
    collected with both optimisation strategies off, i.e. the literal
    Algorithm 1 the example walks through.
    """

    #: (node, mask, scaled_os, os, bs) for each label of Table 1.
    EXPECTED = {
        "L00": (0, 0b00, 0.0, 0.0, 0.0),
        "L01": (1, 0b00, 80.0, 4.0, 1.0),
        "L11": (1, 0b01, 60.0, 3.0, 4.0),
        "L02": (2, 0b10, 20.0, 1.0, 3.0),
        "L03": (3, 0b01, 40.0, 2.0, 2.0),
        "L13": (3, 0b11, 80.0, 4.0, 5.0),
        "L04": (4, 0b01, 60.0, 3.0, 4.0),
        "L05": (5, 0b11, 100.0, 5.0, 4.0),
        "L06": (6, 0b11, 40.0, 2.0, 4.0),
    }

    @pytest.fixture(scope="class")
    def trace(self, fig1_engine):
        from repro.core.query import KORQuery

        trace = SearchTrace()
        result = os_scaling(
            fig1_engine.graph,
            fig1_engine.tables,
            fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0),
            epsilon=0.5,
            use_strategy1=False,
            use_strategy2=False,
            trace=trace,
        )
        return trace, result

    def test_every_table1_label_is_created(self, trace):
        trace, _result = trace
        created = {
            (e.node, e.mask, e.scaled_os, e.os, e.bs) for e in trace.created_labels()
        }
        # The root label is created explicitly, not via label treatment.
        created.add((0, 0, 0.0, 0.0, 0.0))
        for name, expected in self.EXPECTED.items():
            assert expected in created, f"Table-1 label {name} missing from the trace"

    def test_L06_pruned_on_budget(self, trace):
        """Step (b): BS(sigma_{6,7}) = 7, so L06 dies (4 + 7 > 10)."""
        trace, _result = trace
        pruned = [e for e in trace.of_kind("prune_budget") if e.node == 6]
        assert any(e.bs == 4.0 for e in pruned)

    def test_step_c_feasible_route_r1(self, trace):
        """Step (c): R1 = <v0,v2,v3,v4,v7> gives the first upper bound U=6."""
        trace, _result = trace
        updates = [e.extra for e in trace.of_kind("bound_update")]
        assert 6.0 in updates

    def test_final_result_is_paper_erratum(self, trace):
        """The faithful run ends at OS=4 (documented Example-2 erratum)."""
        _trace, result = trace
        assert result.feasible
        assert result.route.objective_score == 4.0

    def test_dequeue_order_starts_with_L02(self, fig1_engine):
        """'L02 is selected because L02 < L03 < L01' (Definition 8)."""
        from repro.core.query import KORQuery

        trace = SearchTrace()
        os_scaling(
            fig1_engine.graph,
            fig1_engine.tables,
            fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0),
            epsilon=0.5,
            use_strategy1=False,
            use_strategy2=False,
            trace=trace,
        )
        dequeues = trace.of_kind("dequeue")
        assert dequeues[0].node == 0  # the root
        assert dequeues[1].node == 2  # L02 before L03 and L01


class TestAlgorithmAgreement:
    """All exact/approximate algorithms agree on the Figure-1 instance."""

    @pytest.mark.parametrize("keywords", [("t1",), ("t2", "t4"), ("t1", "t2", "t3")])
    @pytest.mark.parametrize("delta", [6.0, 8.0, 12.0])
    def test_approximations_within_bounds(self, fig1_engine, keywords, delta):
        exact = fig1_engine.query(0, 7, keywords, delta, algorithm="exact")
        if not exact.feasible:
            for algorithm in ("osscaling", "bucketbound"):
                result = fig1_engine.query(0, 7, keywords, delta, algorithm=algorithm)
                assert not result.feasible
            return
        epsilon = 0.5
        oss = fig1_engine.query(0, 7, keywords, delta, algorithm="osscaling", epsilon=epsilon)
        assert oss.feasible
        assert oss.route.objective_score <= exact.route.objective_score / (1 - epsilon) + 1e-9
        beta = 1.2
        bb = fig1_engine.query(
            0, 7, keywords, delta, algorithm="bucketbound", epsilon=epsilon, beta=beta
        )
        assert bb.feasible
        assert bb.route.objective_score <= exact.route.objective_score * beta / (1 - epsilon) + 1e-9

    def test_every_engine_algorithm_runs(self, fig1_engine):
        for algorithm in ALGORITHMS:
            result = fig1_engine.query(0, 7, ["t1", "t2"], 10.0, algorithm=algorithm)
            assert result.found
