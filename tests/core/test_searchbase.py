"""Tests for the shared search machinery (repro.core.searchbase)."""

import numpy as np
import pytest

from repro.core.label import VIA_JUMP, Label
from repro.core.query import KORQuery
from repro.core.scaling import ScalingContext
from repro.core.searchbase import SearchContext


def make_context(engine, query, epsilon=0.5, threshold=0.01):
    scaling = ScalingContext.for_query(engine.graph, query.budget_limit, epsilon)
    return SearchContext(
        engine.graph, engine.tables, engine.index, query, scaling,
        infrequent_threshold=threshold,
    )


class TestColumns:
    def test_completion_columns_match_tables(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t1",), 10.0))
        np.testing.assert_array_equal(ctx.os_tau_t, fig1_engine.tables.os_tau[:, 7])
        np.testing.assert_array_equal(ctx.bs_sigma_t, fig1_engine.tables.bs_sigma[:, 7])
        assert ctx.os_tau_t_list == ctx.os_tau_t.tolist()

    def test_scaled_out_matches_graph_edges(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t1",), 10.0))
        out = ctx.scaled_out(0)
        assert [(v, o, b) for v, o, b, _s in out] == list(fig1_engine.graph.out_edges(0))
        for _v, objective, _b, scaled in out:
            assert scaled == ctx.scaling.scale(objective)

    def test_scaled_out_is_cached(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t1",), 10.0))
        assert ctx.scaled_out(3) is ctx.scaled_out(3)


class TestImpossibilityScreens:
    def test_all_clear(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t1",), 10.0))
        assert ctx.impossibility_reason() is None

    def test_missing_vocabulary(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("zzz",), 10.0))
        assert "not present" in ctx.impossibility_reason()

    def test_unreachable(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(7, 0, ("t1",), 10.0))
        assert "unreachable" in ctx.impossibility_reason()

    def test_budget_screen(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t1",), 2.0))
        assert "exceeds the limit" in ctx.impossibility_reason()


class TestJumpCandidate:
    """Optimisation Strategy 1 (Section 3.2)."""

    def test_jump_targets_cheapest_uncovered_keyword_node(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t4",), 20.0))
        root = ctx.root_label()
        jump = ctx.jump_candidate(root)
        assert jump is not None
        vj, seg_os, seg_bs = jump
        assert vj == 4  # the only t4 node
        assert seg_os == float(fig1_engine.tables.os_sigma[0, 4])
        assert seg_bs == float(fig1_engine.tables.bs_sigma[0, 4])

    def test_no_jump_when_everything_covered(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t3",), 20.0))
        root = ctx.root_label()  # v0 carries t3 itself
        assert root.mask == ctx.binding.full_mask
        assert ctx.jump_candidate(root) is None

    def test_no_jump_when_budget_cannot_fit_detour(self, fig1_engine):
        # Reaching t5 (v1) and then v7 costs at least 7 > Delta = 6.
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t5",), 6.0))
        assert ctx.jump_candidate(ctx.root_label()) is None

    def test_jump_picks_minimum_budget_detour(self, fig1_engine):
        # Both v2, v5 and v7 carry t2; from v0 the cheapest sigma is to v2.
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t2",), 20.0))
        vj, _os, _bs = ctx.jump_candidate(ctx.root_label())
        sigma_row = fig1_engine.tables.bs_sigma_row(0)
        candidates = {2, 5, 7}
        assert vj in candidates
        assert sigma_row[vj] == min(sigma_row[v] for v in candidates)


class TestStrategy2:
    def test_inactive_without_rare_keyword(self, fig1_engine):
        # Threshold 0.01 on 8 nodes -> nothing counts as infrequent.
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t2",), 10.0), threshold=0.01)
        assert not ctx.strategy2_active

    def test_active_with_generous_threshold(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t4", "t2"), 10.0), threshold=0.5)
        assert ctx.strategy2_active

    def test_rejects_label_that_cannot_detour(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t5", "t2"), 7.5), threshold=0.5)
        assert ctx.strategy2_active
        # A label at v0 with zero scores: cheapest detour via v1 (t5) costs
        # BS(sigma_{0,1}) + BS(sigma_{1,7}) = 1 + 6 = 7 <= 7.5, so survive;
        # but with budget already spent it must die.
        assert not ctx.strategy2_rejects(0, 0, 0.0, 0.0, float("inf"))
        assert ctx.strategy2_rejects(0, 0, 0.0, 1.0, float("inf"))

    def test_covered_rare_bit_never_rejected(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t5", "t2"), 7.5), threshold=0.5)
        rare_bit_mask = 0b01  # t5 is bit 0
        assert not ctx.strategy2_rejects(0, rare_bit_mask, 0.0, 99.0, float("inf"))

    def test_objective_screen_uses_upper_bound(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t5", "t2"), 20.0), threshold=0.5)
        # Detour through v1 to v7 has objective >= OS(tau_{0,1}) + OS(tau_{1,7}).
        floor = float(
            fig1_engine.tables.os_tau[0, 1] + fig1_engine.tables.os_tau[1, 7]
        )
        assert ctx.strategy2_rejects(0, 0, 0.0, 0.0, upper=floor - 0.5)
        assert not ctx.strategy2_rejects(0, 0, 0.0, 0.0, upper=floor + 0.5)


class TestMaterialize:
    def test_edge_chain(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t1",), 10.0))
        root = ctx.root_label()
        child = Label(3, 1, 40.0, 2.0, 2.0, parent=root)
        route = ctx.materialize(child)
        # Chain v0 -> v3, then tau_{3,7} = <v3, v4, v7>.
        assert route.nodes == (0, 3, 4, 7)

    def test_jump_label_expands_sigma_path(self, fig1_engine):
        ctx = make_context(fig1_engine, KORQuery(0, 7, ("t2",), 20.0))
        root = ctx.root_label()
        seg_os = float(fig1_engine.tables.os_sigma[0, 5])
        seg_bs = float(fig1_engine.tables.bs_sigma[0, 5])
        jump = Label(5, 1, 0.0, seg_os, seg_bs, parent=root, via=VIA_JUMP)
        route = ctx.materialize(jump)
        sigma = fig1_engine.tables.sigma_path(0, 5)
        tau = fig1_engine.tables.tau_path(5, 7)
        assert list(route.nodes) == sigma + tau[1:]
        assert route.budget_score == pytest.approx(
            seg_bs + fig1_engine.tables.bs_tau[5, 7]
        )
