"""Tests for the KOREngine facade (repro.core.engine)."""

import pytest

from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.exceptions import QueryError
from repro.index.inverted import InvertedIndex
from repro.prep.tables import CostTables


class TestConstruction:
    def test_builds_tables_and_index_by_default(self, fig1_graph):
        engine = KOREngine(fig1_graph)
        assert engine.tables.num_nodes == fig1_graph.num_nodes
        assert engine.index.document_frequency(fig1_graph.keyword_table.id_of("t2")) == 3

    def test_accepts_prebuilt_components(self, fig1_graph):
        tables = CostTables.from_graph(fig1_graph)
        index = InvertedIndex.from_graph(fig1_graph)
        engine = KOREngine(fig1_graph, tables=tables, index=index)
        assert engine.tables is tables
        assert engine.index is index

    def test_graph_accessor(self, fig1_engine, fig1_graph):
        assert fig1_engine.graph is fig1_graph


class TestDispatch:
    def test_unknown_algorithm_raises(self, fig1_engine):
        with pytest.raises(QueryError, match="unknown algorithm"):
            fig1_engine.query(0, 7, ["t1"], 8.0, algorithm="dijkstra")

    def test_all_listed_algorithms_dispatch(self, fig1_engine):
        for algorithm in ALGORITHMS:
            result = fig1_engine.query(0, 7, ["t1"], 8.0, algorithm=algorithm)
            assert result.found

    def test_params_forwarded(self, fig1_engine):
        loose = fig1_engine.query(0, 7, ["t1", "t2"], 10.0, algorithm="osscaling", epsilon=0.9)
        assert loose.feasible

    def test_greedy2_sets_width(self, fig1_engine):
        result = fig1_engine.query(0, 7, ["t1"], 8.0, algorithm="greedy2")
        assert result.algorithm == "greedy-2"

    def test_run_accepts_prebuilt_query(self, fig1_engine):
        query = KORQuery(0, 7, ("t1", "t2"), 10.0)
        result = fig1_engine.run(query, algorithm="bucketbound")
        assert result.query is query

    def test_results_report_algorithm(self, fig1_engine):
        assert fig1_engine.query(0, 7, ["t1"], 8.0, algorithm="osscaling").algorithm == "osscaling"
        assert fig1_engine.query(0, 7, ["t1"], 8.0, algorithm="exact").algorithm == "exact"
