"""Tests for Algorithm 2 (repro.core.bucketbound)."""

import math

import pytest

from repro.core.bucketbound import BucketQueue, bucket_bound
from repro.core.label import Label
from repro.core.query import KORQuery


def run(engine, source, target, keywords, delta, **params):
    return bucket_bound(
        engine.graph,
        engine.tables,
        engine.index,
        KORQuery(source, target, keywords, delta),
        **params,
    )


class TestBucketQueue:
    def test_bucket_index_geometric(self):
        queue = BucketQueue(base=10.0, beta=2.0)
        assert queue.bucket_index(10.0) == 0
        assert queue.bucket_index(19.9) == 0
        assert queue.bucket_index(20.0) == 1
        assert queue.bucket_index(40.0) == 2

    def test_low_below_base_lands_in_bucket_zero(self):
        queue = BucketQueue(base=10.0, beta=2.0)
        assert queue.bucket_index(3.0) == 0

    def test_pop_draws_from_lowest_bucket(self):
        queue = BucketQueue(base=1.0, beta=2.0)
        far = Label(0, 0, 0.0, 9.0, 0.0)
        near = Label(1, 0, 0.0, 1.0, 0.0)
        queue.push(far, 9.0)
        queue.push(near, 1.0)
        bucket, label = queue.pop()
        assert label is near
        assert bucket == 0

    def test_pop_skips_dead_labels(self):
        queue = BucketQueue(base=1.0, beta=2.0)
        dead = Label(0, 0, 0.0, 1.0, 0.0)
        dead.alive = False
        live = Label(1, 0, 0.0, 1.2, 0.0)
        queue.push(dead, 1.0)
        queue.push(live, 1.2)
        _bucket, label = queue.pop()
        assert label is live

    def test_pop_empty_returns_none(self):
        assert BucketQueue(base=1.0, beta=2.0).pop() is None

    def test_peek_bucket(self):
        queue = BucketQueue(base=1.0, beta=2.0)
        assert queue.peek_bucket() is None
        queue.push(Label(0, 0, 0.0, 4.0, 0.0), 4.0)
        assert queue.peek_bucket() == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BucketQueue(base=1.0, beta=1.0)
        with pytest.raises(ValueError):
            BucketQueue(base=0.0, beta=2.0)
        with pytest.raises(ValueError):
            BucketQueue(base=math.inf, beta=2.0)


class TestResults:
    def test_matches_feasibility_of_osscaling(self, fig1_engine):
        for keywords, delta in ((("t1", "t2"), 10.0), (("t5",), 6.0), (("t1", "t2", "t3"), 8.0)):
            bb = run(fig1_engine, 0, 7, keywords, delta)
            oss = fig1_engine.query(0, 7, keywords, delta, algorithm="osscaling")
            assert bb.feasible == oss.feasible

    @pytest.mark.parametrize("beta", [1.2, 1.5, 2.0])
    def test_theorem3_bound(self, fig1_engine, beta):
        epsilon = 0.5
        exact = fig1_engine.query(0, 7, ("t1", "t2", "t3"), 8.0, algorithm="exact")
        result = run(
            fig1_engine, 0, 7, ("t1", "t2", "t3"), 8.0, epsilon=epsilon, beta=beta
        )
        assert result.feasible
        assert (
            result.route.objective_score
            <= exact.route.objective_score * beta / (1 - epsilon) + 1e-9
        )

    def test_no_feasible_route_detected(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t5",), 6.0)
        assert not result.feasible
        assert result.failure_reason == "no feasible route exists"

    def test_source_covers_everything(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t3",), 8.0)
        assert result.feasible
        # tau_{0,7} is the global objective optimum, so it is THE answer.
        assert result.route.nodes == (0, 3, 4, 7)

    def test_stats_report_buckets(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t1", "t2"), 10.0)
        assert result.stats.buckets_opened >= 1


class TestAgainstOSScaling:
    """BucketBound's answer is within beta of OSScaling's (Lemma 5)."""

    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_below_beta_on_flickr(self, small_flickr_engine, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        graph = small_flickr_engine.graph
        n = graph.num_nodes
        words = [w for w in graph.keyword_table.words][:50]
        keywords = tuple(rng.choice(words, size=2, replace=False))
        source, target = int(rng.integers(n)), int(rng.integers(n))
        delta = 6.0
        beta = 1.2
        oss = small_flickr_engine.query(source, target, keywords, delta, algorithm="osscaling")
        bb = small_flickr_engine.query(
            source, target, keywords, delta, algorithm="bucketbound", beta=beta
        )
        assert bb.feasible == oss.feasible
        if oss.feasible:
            # Lemma 5: same bucket => ratio below beta (up to float slack).
            assert bb.route.objective_score <= oss.route.objective_score * beta + 1e-6
