"""Tests for KOR query objects and binding (repro.core.query)."""

import pytest

from repro.core.query import KORQuery, QueryBinding
from repro.exceptions import QueryError
from repro.graph.generators import figure_1_graph
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def graph():
    return figure_1_graph()


@pytest.fixture(scope="module")
def index(graph):
    return InvertedIndex.from_graph(graph)


class TestKORQuery:
    def test_basic_fields(self):
        query = KORQuery(0, 7, ("t1", "t2"), 8.0)
        assert query.source == 0
        assert query.target == 7
        assert query.keywords == ("t1", "t2")
        assert query.budget_limit == 8.0
        assert query.num_keywords == 2

    def test_duplicate_keywords_deduplicated_in_order(self):
        query = KORQuery(0, 1, ("b", "a", "b"), 1.0)
        assert query.keywords == ("b", "a")

    def test_empty_keyword_set_allowed(self):
        # Degenerates to the weight-constrained shortest path problem.
        assert KORQuery(0, 1, (), 1.0).num_keywords == 0

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_budget_rejected(self, budget):
        with pytest.raises(QueryError, match="budget limit"):
            KORQuery(0, 1, ("a",), budget)

    @pytest.mark.parametrize("bad", ["", 3, None])
    def test_invalid_keywords_rejected(self, bad):
        with pytest.raises(QueryError):
            KORQuery(0, 1, (bad,), 1.0)

    def test_frozen(self):
        query = KORQuery(0, 1, ("a",), 1.0)
        with pytest.raises(Exception):
            query.source = 5  # type: ignore[misc]


class TestQueryBinding:
    def test_full_mask(self, graph, index):
        binding = QueryBinding.bind(graph, index, KORQuery(0, 7, ("t1", "t2"), 8.0))
        assert binding.full_mask == 0b11

    def test_node_masks(self, graph, index):
        binding = QueryBinding.bind(graph, index, KORQuery(0, 7, ("t1", "t2"), 8.0))
        assert binding.node_mask(3) == 0b01  # v3 carries t1 (bit 0)
        assert binding.node_mask(2) == 0b10  # v2 carries t2 (bit 1)
        assert binding.node_mask(0) == 0  # v0 carries t3, not a query keyword

    def test_nodes_with_bit(self, graph, index):
        binding = QueryBinding.bind(graph, index, KORQuery(0, 7, ("t2",), 8.0))
        assert binding.nodes_with_bit[0].tolist() == [2, 5, 7]

    def test_missing_keywords_reported(self, graph, index):
        binding = QueryBinding.bind(graph, index, KORQuery(0, 7, ("t1", "ghost"), 8.0))
        assert binding.missing_keywords == ("ghost",)
        assert not binding.vocabulary_feasible

    def test_out_of_range_endpoints_rejected(self, graph, index):
        with pytest.raises(QueryError, match="source"):
            QueryBinding.bind(graph, index, KORQuery(99, 7, ("t1",), 8.0))
        with pytest.raises(QueryError, match="target"):
            QueryBinding.bind(graph, index, KORQuery(0, 99, ("t1",), 8.0))

    def test_uncovered_bits(self, graph, index):
        binding = QueryBinding.bind(graph, index, KORQuery(0, 7, ("t1", "t2", "t4"), 8.0))
        assert binding.uncovered_bits(0b001) == [1, 2]
        assert binding.uncovered_bits(0b111) == []

    def test_mask_to_words(self, graph, index):
        binding = QueryBinding.bind(graph, index, KORQuery(0, 7, ("t1", "t2"), 8.0))
        assert binding.mask_to_words(0b01) == frozenset({"t1"})
        assert binding.mask_to_words(0b11) == frozenset({"t1", "t2"})
