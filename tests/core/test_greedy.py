"""Tests for Algorithm 3 (repro.core.greedy)."""

import pytest

from repro.core.greedy import greedy
from repro.core.query import KORQuery
from repro.exceptions import PrepError


def run(engine, source, target, keywords, delta, **params):
    return greedy(
        engine.graph,
        engine.tables,
        engine.index,
        KORQuery(source, target, keywords, delta),
        **params,
    )


class TestCoverageMode:
    """The paper's default: keywords always covered, budget may overrun."""

    def test_covers_keywords(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t1", "t2"), 10.0)
        assert result.found
        assert result.covers_keywords
        assert result.route.covers(fig1_engine.graph, ("t1", "t2"))

    def test_may_overrun_budget(self, fig1_engine):
        # t5 only on v1; any covering route costs >= 7 > Delta — greedy
        # still returns a covering route, flagged as over budget.
        result = run(fig1_engine, 0, 7, ("t5",), 6.0)
        assert result.found
        assert result.covers_keywords
        assert not result.within_budget

    def test_algorithm_name_reflects_width(self, fig1_engine):
        assert run(fig1_engine, 0, 7, ("t1",), 10.0).algorithm == "greedy-1"
        assert run(fig1_engine, 0, 7, ("t1",), 10.0, width=2).algorithm == "greedy-2"

    def test_missing_keyword_fails(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("unicorn",), 10.0)
        assert not result.found
        assert "not present" in result.failure_reason

    def test_unreachable_target_fails(self, fig1_engine):
        result = run(fig1_engine, 7, 0, ("t1",), 10.0)
        assert not result.found


class TestBudgetMode:
    """The paper's modified variant: budget kept, coverage may fail."""

    def test_budget_respected(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t5",), 6.0, mode="budget")
        if result.found:
            assert result.route.budget_score <= 6.0 + 1e-9
            assert not result.covers_keywords  # t5 is unreachable within 6

    def test_easy_query_covers_and_fits(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t1",), 10.0, mode="budget")
        assert result.found
        assert result.within_budget


class TestWidth:
    def test_greedy2_never_worse_on_fig1(self, fig1_engine):
        for keywords in (("t1", "t2"), ("t2", "t4"), ("t1", "t2", "t3")):
            one = run(fig1_engine, 0, 7, keywords, 12.0, width=1)
            two = run(fig1_engine, 0, 7, keywords, 12.0, width=2)
            if one.feasible and two.feasible:
                assert two.route.objective_score <= one.route.objective_score + 1e-9

    def test_wide_greedy_explores_more(self, small_flickr_engine):
        graph = small_flickr_engine.graph
        words = tuple(sorted(graph.keyword_table.words)[:3])
        one = run(small_flickr_engine, 0, graph.num_nodes - 1, words, 8.0, width=1)
        two = run(small_flickr_engine, 0, graph.num_nodes - 1, words, 8.0, width=2)
        assert two.stats.loops >= one.stats.loops


class TestAlpha:
    def test_alpha_zero_minimises_budget(self, fig1_engine):
        """Equation 1 with alpha=0 selects purely on budget."""
        result = run(fig1_engine, 0, 7, ("t1", "t2"), 20.0, alpha=0.0)
        assert result.found

    def test_alpha_one_minimises_objective(self, fig1_engine):
        result = run(fig1_engine, 0, 7, ("t1", "t2"), 20.0, alpha=1.0)
        assert result.found

    @pytest.mark.parametrize("alpha", [-0.1, 1.1])
    def test_alpha_out_of_range_rejected(self, fig1_engine, alpha):
        with pytest.raises(PrepError, match="alpha"):
            run(fig1_engine, 0, 7, ("t1",), 10.0, alpha=alpha)

    def test_invalid_width_rejected(self, fig1_engine):
        with pytest.raises(PrepError, match="width"):
            run(fig1_engine, 0, 7, ("t1",), 10.0, width=0)

    def test_invalid_mode_rejected(self, fig1_engine):
        with pytest.raises(PrepError, match="mode"):
            run(fig1_engine, 0, 7, ("t1",), 10.0, mode="yolo")


class TestPathCrediting:
    """credit_path_keywords: keywords of traversed tau segments count."""

    def test_crediting_never_breaks_coverage(self, fig1_engine):
        for crediting in (True, False):
            result = run(
                fig1_engine, 0, 7, ("t1", "t2", "t3"), 12.0,
                credit_path_keywords=crediting,
            )
            assert result.found
            assert result.covers_keywords

    def test_literal_pseudocode_may_use_more_waypoints(self, small_flickr_engine):
        graph = small_flickr_engine.graph
        words = tuple(sorted(graph.keyword_table.words)[:4])
        credited = run(small_flickr_engine, 0, graph.num_nodes - 1, words, 10.0)
        literal = run(
            small_flickr_engine, 0, graph.num_nodes - 1, words, 10.0,
            credit_path_keywords=False,
        )
        if credited.found and literal.found:
            # Crediting can only shorten (or keep) the waypoint tour.
            assert credited.route.budget_score <= literal.route.budget_score + 1e-9
