"""Tests for result objects and traces (repro.core.results)."""

from repro.core.query import KORQuery
from repro.core.results import KkRResult, KORResult, SearchStats, SearchTrace
from repro.core.route import Route
from repro.graph.generators import figure_1_graph


def make_result(route=None, covers=False, within=False):
    return KORResult(
        query=KORQuery(0, 7, ("t1",), 8.0),
        algorithm="osscaling",
        route=route,
        covers_keywords=covers,
        within_budget=within,
    )


class TestKORResult:
    def test_feasible_requires_all_three(self):
        graph = figure_1_graph()
        route = Route.from_nodes(graph, [0, 3, 4, 7])
        assert make_result(route, covers=True, within=True).feasible
        assert not make_result(route, covers=True, within=False).feasible
        assert not make_result(route, covers=False, within=True).feasible
        assert not make_result(None, covers=True, within=True).feasible

    def test_scores_inf_when_no_route(self):
        result = make_result(None)
        assert result.objective_score == float("inf")
        assert result.budget_score == float("inf")

    def test_scores_of_found_route(self):
        graph = figure_1_graph()
        result = make_result(Route.from_nodes(graph, [0, 3, 4, 7]), True, True)
        assert result.objective_score == 4.0
        assert result.budget_score == 7.0


class TestKkRResult:
    def test_found_and_scores(self):
        graph = figure_1_graph()
        routes = [Route.from_nodes(graph, [0, 3, 4, 7])]
        result = KkRResult(
            query=KORQuery(0, 7, ("t1",), 8.0), algorithm="osscaling-topk", k=2, routes=routes
        )
        assert result.found
        assert result.objective_scores == [4.0]

    def test_empty(self):
        result = KkRResult(
            query=KORQuery(0, 7, ("t1",), 8.0), algorithm="osscaling-topk", k=2, routes=[]
        )
        assert not result.found


class TestSearchTrace:
    def test_records_and_filters(self):
        trace = SearchTrace()
        trace.record("create", 1, 0b1, 10.0, 1.0, 2.0)
        trace.record("dequeue", 1, 0b1, 10.0, 1.0, 2.0)
        trace.record("create", 2, 0b11, 20.0, 2.0, 3.0, extra=5.0)
        assert len(trace.events) == 3
        assert len(trace.created_labels()) == 2
        assert trace.of_kind("dequeue")[0].node == 1
        assert trace.of_kind("create")[1].extra == 5.0

    def test_stats_defaults(self):
        stats = SearchStats()
        assert stats.labels_created == 0
        assert stats.runtime_seconds == 0.0
