"""Tests for the KkR top-k extension (Section 3.5)."""

import pytest

from repro.core.query import KORQuery
from repro.core.route import Route
from repro.core.topk import TopKCollector, bucket_bound_top_k, os_scaling_top_k
from repro.exceptions import QueryError


def route(graph, nodes):
    return Route.from_nodes(graph, nodes)


class TestTopKCollector:
    def test_keeps_best_k(self, fig1_graph):
        collector = TopKCollector(2)
        collector.add(route(fig1_graph, [0, 3, 5, 7]))  # OS 9
        collector.add(route(fig1_graph, [0, 3, 4, 7]))  # OS 4
        collector.add(route(fig1_graph, [0, 1, 7]))     # OS 7
        scores = [r.objective_score for r in collector.routes]
        assert scores == [4.0, 7.0]

    def test_deduplicates_identical_routes(self, fig1_graph):
        collector = TopKCollector(3)
        assert collector.add(route(fig1_graph, [0, 3, 4, 7]))
        assert not collector.add(route(fig1_graph, [0, 3, 4, 7]))
        assert len(collector) == 1

    def test_upper_bound_inf_until_filled(self, fig1_graph):
        collector = TopKCollector(2)
        assert collector.upper_bound == float("inf")
        collector.add(route(fig1_graph, [0, 3, 4, 7]))
        assert collector.upper_bound == float("inf")
        collector.add(route(fig1_graph, [0, 1, 7]))
        assert collector.upper_bound == 7.0

    def test_k_must_be_positive(self):
        with pytest.raises(QueryError):
            TopKCollector(0)


class TestTopKAlgorithms:
    @pytest.mark.parametrize("top_k", [os_scaling_top_k, bucket_bound_top_k])
    def test_k1_matches_top1_objective(self, fig1_engine, top_k):
        result = top_k(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0), k=1,
        )
        assert len(result.routes) == 1
        assert result.routes[0].objective_score == 4.0

    @pytest.mark.parametrize("top_k", [os_scaling_top_k, bucket_bound_top_k])
    def test_routes_sorted_and_distinct(self, fig1_engine, top_k):
        result = top_k(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0), k=3,
        )
        scores = result.objective_scores
        assert scores == sorted(scores)
        assert len({r.nodes for r in result.routes}) == len(result.routes)

    @pytest.mark.parametrize("top_k", [os_scaling_top_k, bucket_bound_top_k])
    def test_every_returned_route_is_feasible(self, fig1_engine, top_k):
        result = top_k(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0), k=4,
        )
        for r in result.routes:
            assert r.covers(fig1_engine.graph, ("t1", "t2"))
            assert r.budget_score <= 10.0 + 1e-9
            assert r.source == 0 and r.target == 7

    @pytest.mark.parametrize("top_k", [os_scaling_top_k, bucket_bound_top_k])
    def test_infeasible_query_returns_empty(self, fig1_engine, top_k):
        result = top_k(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t5",), 6.0), k=3,
        )
        assert result.routes == []
        assert not result.found

    def test_larger_k_extends_smaller_k_prefix(self, fig1_engine):
        small = os_scaling_top_k(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0), k=2,
        )
        large = os_scaling_top_k(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t1", "t2"), 10.0), k=4,
        )
        assert small.objective_scores == large.objective_scores[:2]

    def test_engine_dispatch(self, fig1_engine):
        result = fig1_engine.top_k(0, 7, ["t1", "t2"], 10.0, k=2, algorithm="bucketbound")
        assert result.k == 2
        assert result.found
        from repro.exceptions import QueryError as QE

        with pytest.raises(QE):
            fig1_engine.top_k(0, 7, ["t1"], 10.0, k=2, algorithm="greedy")
