"""Deadline propagation and cooperative mid-search cancellation.

Pins the :class:`~repro.core.deadline.Deadline` contract (absolute
monotonic expiry, amortised ``tick`` checkpoints, cross-process
pickling) and the engine-level guarantees the serving tiers build on:
an expired deadline refuses to start a search, every algorithm's search
loop stops within one checkpoint stride of expiry, and a deadline that
never expires is semantically invisible.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.core.deadline import DEFAULT_TICK_STRIDE, Deadline
from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.exceptions import DeadlineExceeded
from repro.graph.builder import GraphBuilder

from tests.service.test_differential import fingerprint, random_instance

pytestmark = pytest.mark.timeout(120)


def expired_deadline(stride: int = 1) -> Deadline:
    return Deadline(time.monotonic() - 1.0, tick_stride=stride)


class TestDeadlineContract:
    def test_after_requires_positive_seconds(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(0.0)
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(-2.0)

    def test_tick_stride_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="tick_stride"):
            Deadline(time.monotonic(), tick_stride=0)

    def test_remaining_expired_check(self):
        generous = Deadline.after(3600.0)
        assert not generous.expired()
        assert generous.remaining() > 3500.0
        generous.check()  # no raise

        gone = expired_deadline()
        assert gone.expired()
        assert gone.remaining() < 0.0
        with pytest.raises(DeadlineExceeded, match="deadline exceeded by"):
            gone.check()

    def test_latest_prefers_the_looser_deadline(self):
        near = Deadline(100.0)
        far = Deadline(200.0)
        assert Deadline.latest(near, far) is far
        assert Deadline.latest(far, near) is far

    def test_latest_treats_none_as_unbounded(self):
        some = Deadline.after(1.0)
        assert Deadline.latest(None, some) is None
        assert Deadline.latest(some, None) is None
        assert Deadline.latest(None, None) is None

    def test_tick_reads_the_clock_every_stride_calls(self):
        gone = expired_deadline(stride=4)
        for _ in range(3):
            gone.tick()  # amortised: no clock read yet
        with pytest.raises(DeadlineExceeded):
            gone.tick()
        # The counter reset on the stride boundary: three more free ticks.
        for _ in range(3):
            gone.tick()
        with pytest.raises(DeadlineExceeded):
            gone.tick()

    def test_pickle_round_trip_preserves_expiry_and_stride(self):
        original = Deadline.after(3600.0, tick_stride=7)
        original.tick()
        copy = pickle.loads(pickle.dumps(original))
        assert copy.__getstate__() == original.__getstate__()
        assert copy.expires_at == original.expires_at
        # The worker-side counter restarts: a full stride of free ticks.
        expired_copy = pickle.loads(pickle.dumps(expired_deadline(stride=3)))
        expired_copy.tick()
        expired_copy.tick()
        with pytest.raises(DeadlineExceeded):
            expired_copy.tick()

    def test_default_stride_is_small_enough_to_matter(self):
        assert 1 <= DEFAULT_TICK_STRIDE <= 1024


class _TripsAfterEntry(Deadline):
    """Passes the engine's entry check once, then reports expiry.

    Lets a test drive ``engine.run`` past its refuse-to-start guard and
    prove each algorithm's *search loop* carries a live checkpoint.
    """

    def __init__(self):
        super().__init__(time.monotonic() + 3600.0, tick_stride=1)
        self.checks = 0

    def check(self) -> None:
        self.checks += 1
        if self.checks > 1:
            raise DeadlineExceeded("injected expiry after the entry check")


def _search_instance():
    """A tiny graph where every algorithm must actually search."""
    builder = GraphBuilder()
    builder.add_node()  # 0: source
    builder.add_node(keywords=["pub"])
    builder.add_node(keywords=["cafe"])
    builder.add_node()  # 3: target
    for u in range(4):
        for v in range(4):
            if u != v:
                builder.add_edge(u, v, 1.0, 1.0)
    engine = KOREngine(builder.build())
    query = KORQuery(0, 3, ("pub", "cafe"), 6.0)
    return engine, query


class TestEngineCancellation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_expired_deadline_refuses_to_start(self, algorithm):
        engine, query = _search_instance()
        with pytest.raises(DeadlineExceeded):
            engine.run(query, algorithm=algorithm, deadline=expired_deadline())

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_search_loop_checkpoint_stops_a_running_search(self, algorithm):
        """Expiry *after* the entry check still stops the search: every
        algorithm's main loop ticks the deadline."""
        engine, query = _search_instance()
        deadline = _TripsAfterEntry()
        with pytest.raises(DeadlineExceeded):
            engine.run(query, algorithm=algorithm, deadline=deadline)
        assert deadline.checks > 1  # the loop, not the entry, raised

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", (0, 3))
    def test_generous_deadline_is_semantically_invisible(self, seed, algorithm):
        engine, queries = random_instance(seed)
        for query in queries:
            plain = fingerprint(engine.run(query, algorithm=algorithm))
            bounded = fingerprint(
                engine.run(query, algorithm=algorithm, deadline=Deadline.after(3600.0))
            )
            assert bounded == plain

    def test_mid_search_expiry_returns_promptly(self):
        """A search that would run for ~seconds stops within a small
        multiple of the checkpoint interval once the deadline passes."""
        builder = GraphBuilder()
        builder.add_node(keywords=["rare"])
        for _ in range(6):
            builder.add_node()
        for u in range(7):
            for v in range(7):
                if u != v:
                    builder.add_edge(u, v, 1.0, 1.0)
        engine = KOREngine(builder.build())
        # Walk enumeration within budget 9 over out-degree 6 is far too
        # large to finish; only the deadline can stop it quickly.
        query = KORQuery(1, 2, ("rare",), 9.0)

        budget_seconds = 0.05
        begin = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            engine.run(
                query,
                algorithm="exhaustive",
                deadline=Deadline.after(budget_seconds),
            )
        elapsed = time.monotonic() - begin
        # Checkpoints are a stride of queue pops (microseconds); allow
        # lavish CI slack while still proving the search did not run on.
        assert elapsed < budget_seconds + 1.0
