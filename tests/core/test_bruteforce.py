"""Tests for the exact baselines (repro.core.bruteforce)."""

import pytest

from repro.core.bruteforce import branch_and_bound, exhaustive_search
from repro.core.query import KORQuery


class TestExhaustiveSearch:
    def test_finds_paper_optimum(self, fig1_engine):
        result = exhaustive_search(
            fig1_engine.graph, fig1_engine.index, KORQuery(0, 7, ("t1", "t2", "t3"), 8.0)
        )
        assert result.feasible
        assert result.route.objective_score == 4.0

    def test_proves_infeasibility(self, fig1_engine):
        result = exhaustive_search(
            fig1_engine.graph, fig1_engine.index, KORQuery(0, 7, ("t5",), 6.0)
        )
        assert not result.feasible

    def test_expansion_cap_raises(self, fig1_engine):
        with pytest.raises(RuntimeError, match="expansions"):
            exhaustive_search(
                fig1_engine.graph,
                fig1_engine.index,
                KORQuery(0, 7, ("t1", "t2"), 50.0),
                max_expansions=10,
            )

    def test_may_revisit_nodes(self, fig1_engine):
        """The optimum may be a non-simple walk (paper §3.2 remark)."""
        # t4 on v4 and t5 on v1: from v0 the cheapest covering walk to v7
        # revisits nothing here, but the walk search must allow it anyway;
        # assert the search tolerates generous budgets without missing.
        result = exhaustive_search(
            fig1_engine.graph, fig1_engine.index, KORQuery(0, 7, ("t4", "t5"), 14.0)
        )
        assert result.feasible


class TestBranchAndBound:
    def test_agrees_with_exhaustive(self, fig1_engine):
        for keywords, delta in (
            (("t1",), 8.0),
            (("t1", "t2"), 10.0),
            (("t2", "t4"), 9.0),
            (("t1", "t2", "t3"), 8.0),
        ):
            query = KORQuery(0, 7, keywords, delta)
            bnb = branch_and_bound(
                fig1_engine.graph, fig1_engine.tables, fig1_engine.index, query
            )
            brute = exhaustive_search(fig1_engine.graph, fig1_engine.index, query)
            assert bnb.feasible == brute.feasible
            if brute.feasible:
                assert bnb.route.objective_score == pytest.approx(
                    brute.route.objective_score
                )

    def test_algorithm_label(self, fig1_engine):
        result = branch_and_bound(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index,
            KORQuery(0, 7, ("t1",), 8.0),
        )
        assert result.algorithm == "exact"

    def test_exact_beats_or_ties_approximations(self, fig1_engine):
        query = KORQuery(0, 7, ("t1", "t2"), 10.0)
        exact = branch_and_bound(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index, query
        )
        for algorithm in ("osscaling", "bucketbound"):
            approx = fig1_engine.run(query, algorithm=algorithm)
            assert exact.route.objective_score <= approx.route.objective_score + 1e-9
