"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import SpatialKeywordGraph

#: Small pool so random graphs get keyword overlap (queries can be covered).
KEYWORD_POOL = ("pub", "mall", "cafe", "park", "imax")

#: Weights are drawn from a small grid of "nice" positive values: realistic
#: enough to exercise scaling/domination, tame enough to avoid float noise
#: dominating shrunk counterexamples.
WEIGHT_GRID = (0.5, 1.0, 1.5, 2.0, 3.0, 5.0)


@st.composite
def small_graphs(draw, min_nodes: int = 2, max_nodes: int = 7) -> SpatialKeywordGraph:
    """A random small spatial-keyword digraph (always has >= 1 edge).

    Every node gets 0-2 keywords from the shared pool; every ordered node
    pair independently gets an edge with grid weights, plus a fallback
    0 -> 1 edge so the graph is never edgeless.
    """
    n = draw(st.integers(min_nodes, max_nodes))
    builder = GraphBuilder()
    for _ in range(n):
        keywords = draw(
            st.lists(st.sampled_from(KEYWORD_POOL), min_size=0, max_size=2, unique=True)
        )
        builder.add_node(keywords=keywords)

    added = False
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if draw(st.booleans()):
                objective = draw(st.sampled_from(WEIGHT_GRID))
                budget = draw(st.sampled_from(WEIGHT_GRID))
                builder.add_edge(u, v, objective, budget)
                added = True
    if not added:
        builder.add_edge(0, 1, 1.0, 1.0)
    return builder.build()


@st.composite
def graph_and_query(draw):
    """A random graph plus a query drawn from its own vocabulary."""
    graph = draw(small_graphs())
    source = draw(st.integers(0, graph.num_nodes - 1))
    target = draw(st.integers(0, graph.num_nodes - 1))
    present = sorted(set(graph.keyword_table.words))
    keywords = draw(
        st.lists(st.sampled_from(present), min_size=1, max_size=3, unique=True)
        if present
        else st.just([])
    )
    delta = draw(st.sampled_from((2.0, 4.0, 8.0, 16.0)))
    return graph, source, target, tuple(keywords), delta
