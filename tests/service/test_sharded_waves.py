"""Shard-aware wave routing: differential, observability and chaos.

The sharded scatter now groups same-shard attempts into
:class:`~repro.service.backends.WaveTask` waves (one submission per
shard wave instead of one per attempt).  The contract is the same as
the flat tier's kernel waves: **fingerprint identity** — routes,
scores, failure reasons and per-label search statistics must match the
per-query ShardTask path exactly, for all six algorithms, on every
backend — plus the three containment tiers (poisoned member / kernel
fallback / broken-wave per-query resubmission) and the new wave
occupancy counters in ``ServiceStats``.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ALGORITHMS
from repro.service import ProcessBackend
from repro.service.batch import (
    DEFAULT_WAVE_SIZE,
    MAX_WAVE_SIZE,
    WaveSizeController,
)
from repro.service.faults import FaultPlan, FaultRule, injected
from repro.service.sharding import ShardedQueryService

from tests.core.test_kernels import STAT_FIELDS
from tests.service.test_differential import fingerprint, random_instance

pytestmark = pytest.mark.timeout(300)


def _snapshot_view(service):
    """Routing/merge counters with the per-service key prefix stripped
    (two services over the same graph must agree on these)."""
    snapshot = service.stats.snapshot()
    strip = lambda d: {k.split("/", 1)[-1]: v for k, v in d.items()}  # noqa: E731
    return (
        strip(snapshot.shard_tasks),
        strip(snapshot.shard_errors),
        dict(snapshot.merge_wins),
    )


def _report_view(report):
    """Fingerprints plus the per-label search counters, slot by slot."""
    view = []
    for item in report.items:
        if item.error is not None:
            view.append((item.index, "error", type(item.error).__name__))
        else:
            view.append(
                (
                    item.index,
                    fingerprint(item.result),
                    tuple(getattr(item.result.stats, f) for f in STAT_FIELDS),
                    item.result.degraded,
                )
            )
    return view


class TestShardedWaveDifferential:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_waved_scatter_matches_per_query_scatter(self, algorithm, service_backend):
        """Wave-routed results == per-query ShardTask results, down to
        the per-label statistics and the shard/merge accounting."""
        for seed in (0, 1):
            engine, queries = random_instance(seed)
            waved = ShardedQueryService(
                engine.graph, num_cells=2, backend=service_backend, cache_capacity=0
            )
            per_query = ShardedQueryService(
                engine.graph,
                num_cells=2,
                backend=service_backend,
                cache_capacity=0,
                wave_kernels=False,
            )
            try:
                waved_report = waved.execute(queries, algorithm=algorithm, workers=3)
                per_query_report = per_query.execute(
                    queries, algorithm=algorithm, workers=3
                )
                assert _report_view(waved_report) == _report_view(per_query_report)
                assert _snapshot_view(waved) == _snapshot_view(per_query)
            finally:
                waved.close()
                per_query.close()

    def test_single_cell_waves_match_flat_engine(self, service_backend):
        """``num_cells=1``: the waved scatter still answers exactly like
        the flat engine (every attempt is cell-local, one group)."""
        engine, queries = random_instance(4)
        service = ShardedQueryService(
            engine.graph, num_cells=1, backend=service_backend, cache_capacity=0
        )
        try:
            report = service.execute(queries, workers=3)
            for item in report.items:
                assert item.error is None
                assert fingerprint(item.result) == fingerprint(
                    engine.run(item.query)
                )
        finally:
            service.close()


class TestWaveObservability:
    def test_wave_counters_fill_and_reset(self, service_backend):
        engine, queries = random_instance(2)
        service = ShardedQueryService(
            engine.graph, num_cells=2, backend=service_backend, cache_capacity=0
        )
        try:
            service.execute(queries, workers=3)
            waves = service.stats.snapshot().waves
            # 8 queries over 2 cells + crosscell: at least the crosscell
            # group (every unit has a cross attempt) forms a real wave.
            assert waves["formed"] >= 1
            assert waves["members"] >= 2 * waves["formed"]
            assert waves["capacity"] >= waves["members"]
            assert 0.0 < waves["fill_rate"] <= 1.0
            assert waves["mean_members"] == waves["members"] / waves["formed"]
            assert "waves:" in service.stats.snapshot().describe()
            service.stats.reset()
            assert service.stats.snapshot().waves == {}
        finally:
            service.close()

    def test_per_query_mode_forms_no_waves(self, service_backend):
        engine, queries = random_instance(2)
        service = ShardedQueryService(
            engine.graph,
            num_cells=2,
            backend=service_backend,
            cache_capacity=0,
            wave_kernels=False,
        )
        try:
            service.execute(queries, workers=3)
            assert service.stats.snapshot().waves == {}
        finally:
            service.close()


class TestAdaptiveWaveSizing:
    def test_low_rate_keeps_base_size(self):
        controller = WaveSizeController()
        controller.observe(1.0)
        assert controller.wave_size == DEFAULT_WAVE_SIZE

    def test_high_rate_on_dense_graph_grows_within_cap(self):
        class DenseGraph:
            num_nodes = 100
            num_edges = 1600  # mean out-degree 16 = 4x the reference

        controller = WaveSizeController()
        controller.retarget(DenseGraph())
        controller.observe(500.0)
        assert controller.wave_size == min(MAX_WAVE_SIZE, DEFAULT_WAVE_SIZE * 4)
        # The rate dropping back shrinks the wave again.
        controller.observe(0.0)
        assert controller.wave_size == DEFAULT_WAVE_SIZE

    def test_sparse_graph_never_shrinks_below_base(self):
        class SparseGraph:
            num_nodes = 100
            num_edges = 100  # mean out-degree 1

        controller = WaveSizeController()
        controller.retarget(SparseGraph())
        controller.observe(1e9)
        assert controller.wave_size == DEFAULT_WAVE_SIZE

    def test_fixed_size_ignores_the_signals(self):
        class DenseGraph:
            num_nodes = 10
            num_edges = 1000

        controller = WaveSizeController(8, fixed=True)
        controller.retarget(DenseGraph())
        controller.observe(1e9)
        assert controller.wave_size == 8
        assert controller.describe()["mode"] == "fixed"

    def test_service_tune_waves_round_trip(self, service_backend):
        engine, _queries = random_instance(0)
        service = ShardedQueryService(
            engine.graph, num_cells=2, backend=service_backend
        )
        try:
            assert service.wave_size == DEFAULT_WAVE_SIZE
            size = service.tune_waves(1000.0)
            assert size == service.wave_size >= DEFAULT_WAVE_SIZE
            policy = service.wave_policy()
            assert policy["mode"] == "adaptive"
            assert policy["arrival_qps"] == 1000.0
            assert policy["wave_size"] == size
        finally:
            service.close()


class TestWaveChaos:
    def test_kill_worker_mid_shard_wave_degraded_or_identical(self):
        """SIGKILL under a shard wave: the dead-worker retry (and, past
        it, the per-query resubmission tier) must deliver every slot an
        answer that is fingerprint-identical or flagged degraded."""
        engine, queries = random_instance(3)
        baseline = [fingerprint(engine.run(q)) for q in queries]
        backend = ProcessBackend(workers=2)
        try:
            service = ShardedQueryService(
                engine.graph, num_cells=2, backend=backend, cache_capacity=0
            )
            plan = FaultPlan([FaultRule(kind="kill_worker", times=1)])
            with injected(plan):
                report = service.execute(queries, workers=3)
            assert plan.fired() == {0: 1}
            for item, expected in zip(report.items, baseline):
                assert item.error is None
                if item.result.degraded:
                    assert item.result.feasible
                else:
                    assert fingerprint(item.result) == expected
        finally:
            backend.close()
