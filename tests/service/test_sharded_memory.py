"""Memory scaling of the sharded service (the point of dropping the
global tier).

With a flat global engine the service's table bytes were ``O(n^2)``
*plus* the per-cell tables — memory grew with ``num_cells``.  With
cross-cell answers assembled from the cells' own tables plus the border
tier, table memory must *shrink* (or at worst hold) as the cell count
grows.  These tests pin that, and guard against a flat ``O(n^2)`` engine
sneaking back into the service.

The graph is an elongated grid: cuts stay ``O(width)`` nodes wide, so
the border tier cannot swamp the quadratic savings — the regime the
partition architecture is designed for (road networks).
"""

from __future__ import annotations

import pytest

from repro.graph.generators import grid_graph
from repro.prep.partition import PartitionedCostTables
from repro.prep.tables import CostTables
from repro.service import SerialBackend, ShardedQueryService

CELL_COUNTS = (1, 4, 8)


@pytest.fixture(scope="module")
def long_grid():
    return grid_graph(4, 48)


def service_for(graph, num_cells) -> ShardedQueryService:
    return ShardedQueryService(
        graph, num_cells=num_cells, seed=0, backend=SerialBackend(), cache_capacity=0
    )


def test_memory_non_increasing_in_cell_count(long_grid):
    """Resident engine-table bytes never grow with num_cells."""
    sizes = {}
    for num_cells in CELL_COUNTS:
        with service_for(long_grid, num_cells) as service:
            sizes[num_cells] = service.memory_bytes()
    assert sizes[1] >= sizes[4] >= sizes[8], sizes
    # The first split must actually buy something substantial, not just
    # tie: a 4-way split of a thin grid saves well over half the bytes.
    assert sizes[4] < 0.6 * sizes[1], sizes


def test_no_flat_global_engine(long_grid):
    """No engine in the service holds O(n^2) tables once cells > 1."""
    n = long_grid.num_nodes
    with service_for(long_grid, 4) as service:
        assert not hasattr(service, "global_engine")
        assert isinstance(service.border_engine.tables, PartitionedCostTables)
        for shard in service.shards:
            assert isinstance(shard.engine.tables, CostTables)
            assert shard.engine.tables.num_nodes < n
        # The border engine reuses the shard tables rather than cloning:
        for cell_tables, shard in zip(
            service.border_engine.tables.cell_tables, service.shards
        ):
            assert cell_tables is shard.engine.tables


def test_single_cell_matches_flat_footprint(long_grid):
    """num_cells=1 degenerates to exactly one flat engine's tables."""
    with service_for(long_grid, 1) as service:
        flat = service.shards[0].engine.tables
        expected = sum(
            getattr(flat, name).nbytes
            for name in (
                "os_tau",
                "bs_tau",
                "os_sigma",
                "bs_sigma",
                "pred_tau",
                "pred_sigma",
            )
        )
        assert service.memory_bytes() == expected
        assert len(service.border_engine.tables.partition.border_nodes) == 0


def test_memory_accounting_deduplicates_shared_tables(long_grid):
    """Counting shards + border engine never double-counts shared cells."""
    with service_for(long_grid, 4) as service:
        assembled = service.border_engine.tables
        border_only = assembled.memory_bytes(include_paths=True)
        cell_only = sum(
            sum(
                getattr(tables, name).nbytes
                for name in (
                    "os_tau",
                    "bs_tau",
                    "os_sigma",
                    "bs_sigma",
                    "pred_tau",
                    "pred_sigma",
                )
            )
            for tables in assembled.cell_tables
        )
        # service.memory_bytes() == cells (once) + border tier.
        assert service.memory_bytes() == border_only
        assert cell_only < border_only


def test_served_answers_still_sound_on_every_granularity(long_grid):
    """The memory win must not cost correctness: spot-check answers."""
    from repro.core.engine import KOREngine
    from repro.core.query import KORQuery

    keywords = {0: ["a"], 95: ["b"], 190: ["c"]}
    graph = grid_graph(4, 48, keywords=keywords)
    flat = KOREngine(graph)
    queries = [
        KORQuery(0, 191, ("a", "b"), 80.0),
        KORQuery(5, 100, ("c",), 200.0),
        KORQuery(47, 150, ("a", "c"), 250.0),
    ]
    expected = [flat.run(q, algorithm="bucketbound") for q in queries]
    for num_cells in CELL_COUNTS:
        with service_for(graph, num_cells) as service:
            got = service.run_batch(queries, algorithm="bucketbound")
            for result, reference in zip(got, expected):
                assert result.feasible == reference.feasible
                if result.feasible:
                    assert result.objective_score == pytest.approx(
                        reference.objective_score
                    )
