"""Cross-shard differential testing: ShardedQueryService vs flat KOREngine.

The sharded service's contract, exercised for **every** algorithm over
randomized graphs and ≥ 3 partition granularities:

* ``num_cells=1`` — the single cell is the whole graph, so every answer
  must match the flat engine **exactly** (same route, same scores, same
  failure reason);
* any granularity — answers must be *sound* (a returned route exists in
  the full graph, covers the query keywords and fits the budget) and
  never beat the true optimum certified by the flat ``exact`` engine;
* feasibility equivalence — for the complete algorithms the sharded
  service finds a feasible route exactly when the flat engine does: the
  scatter wave always includes the cross-cell ``BorderEngine``, whose
  border-table assembly is exact over the full graph; the greedy
  heuristics may only become *more* feasible (a cell-local greedy can
  succeed where the flat greedy wanders off).

Graphs stay tiny and edge weights >= 1 so the ``exhaustive`` baseline's
walk enumeration stays bounded and ``exact`` optima are cheap to certify.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.route import Route
from repro.service import SerialBackend, ShardedQueryService

from tests.service.test_differential import fingerprint, random_instance
from tests.strategies import graph_and_query

#: Algorithms guaranteed to find a feasible route whenever one exists.
COMPLETE_ALGORITHMS = ("osscaling", "bucketbound", "exact", "exhaustive")

GRANULARITIES = (1, 2, 3)


def assert_sound(graph, query, result):
    """A feasible sharded answer must hold up on the *full* graph."""
    rescored = Route.from_nodes(graph, result.route.nodes)  # raises on fake edges
    assert rescored.objective_score == pytest.approx(result.objective_score)
    assert rescored.budget_score == pytest.approx(result.budget_score)
    assert result.route.covers(graph, query.keywords)
    assert result.budget_score <= query.budget_limit + 1e-9
    assert result.route.source == query.source
    assert result.route.target == query.target


@pytest.mark.parametrize("num_cells", GRANULARITIES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_sharded_matches_flat_contract(algorithm, num_cells, service_backend):
    """Soundness + upper bound + feasibility equivalence, per algorithm."""
    for seed in (0, 1, 2):
        engine, queries = random_instance(seed)
        graph = engine.graph
        cells = min(num_cells, graph.num_nodes)
        flat = [engine.run(q, algorithm=algorithm) for q in queries]
        optima = [engine.run(q, algorithm="exact") for q in queries]

        service = ShardedQueryService(graph, num_cells=cells, backend=service_backend)
        report = service.execute(queries, algorithm=algorithm, workers=3)
        assert [item.query for item in report.items] == queries

        for item, flat_result, optimum, query in zip(
            report.items, flat, optima, queries
        ):
            assert item.ok, f"slot {item.index} failed: {item.error}"
            result = item.result
            if cells == 1:
                assert fingerprint(result) == fingerprint(flat_result)
            if algorithm in COMPLETE_ALGORITHMS:
                assert result.feasible == flat_result.feasible
            elif flat_result.feasible:
                # Greedy may improve through a cell, never regress: the
                # cross-cell attempt sees the whole graph through exact
                # border tables, like the flat engine did.
                assert result.feasible
            if result.feasible:
                assert_sound(graph, query, result)
                # Soundness invariant: nothing the sharded service
                # returns beats the certified optimum.
                assert result.objective_score >= optimum.objective_score - 1e-9


@pytest.mark.parametrize("num_cells", GRANULARITIES)
def test_sharded_warm_cache_stays_identical(num_cells, service_backend):
    """A warm second pass (pure cache hits) repeats the cold answers."""
    engine, queries = random_instance(3)
    cells = min(num_cells, engine.graph.num_nodes)
    service = ShardedQueryService(
        engine.graph, num_cells=cells, backend=service_backend
    )
    cold = service.run_batch(queries, algorithm="bucketbound", workers=3)
    warm = service.run_batch(queries, algorithm="bucketbound", workers=3)
    assert [fingerprint(r) for r in warm] == [fingerprint(r) for r in cold]
    assert service.snapshot().cache_hits >= len(queries)


def test_single_submits_match_batches(service_backend):
    """The one-at-a-time path routes and merges exactly like batches."""
    engine, queries = random_instance(5)
    cells = min(2, engine.graph.num_nodes)
    batch_service = ShardedQueryService(
        engine.graph, num_cells=cells, seed=1, backend=service_backend
    )
    single_service = ShardedQueryService(
        engine.graph, num_cells=cells, seed=1, backend=service_backend
    )
    batched = batch_service.run_batch(queries, algorithm="osscaling", workers=3)
    for query, expected in zip(queries, batched):
        got = single_service.submit(query, algorithm="osscaling")
        assert fingerprint(got) == fingerprint(expected)


def test_vocabulary_missing_keyword_routes_straight_to_crosscell(service_backend):
    """No engine can cover an unknown keyword: one cross-cell run, no
    local attempt, flat-identical failure."""
    from repro.core.query import KORQuery

    engine, _ = random_instance(0)
    cells = min(2, engine.graph.num_nodes)
    service = ShardedQueryService(engine.graph, num_cells=cells, backend=service_backend)
    query = KORQuery(0, engine.graph.num_nodes - 1, ("no-such-keyword",), 6.0)
    assert service.plan_of(query) == "keywords-missing-from-graph"
    result = service.submit(query, algorithm="bucketbound")
    flat = engine.run(query, algorithm="bucketbound")
    assert fingerprint(result) == fingerprint(flat)
    assert not result.feasible
    snapshot = service.snapshot()
    assert sum(snapshot.shard_tasks.values()) == 1  # exactly one crosscell task
    assert all(key.endswith("crosscell") for key in snapshot.shard_tasks)


def test_routing_stats_cover_every_computed_query(service_backend):
    """Per-shard counters account one-or-two tasks per computed query."""
    engine, queries = random_instance(1)
    cells = min(2, engine.graph.num_nodes)
    service = ShardedQueryService(engine.graph, num_cells=cells, backend=service_backend)
    report = service.execute(queries, algorithm="bucketbound", workers=3)
    computed = sum(1 for item in report.items if not item.cached)
    snapshot = service.snapshot()
    total_tasks = sum(snapshot.shard_tasks.values())
    # Every computed unique query ran at least one task, at most two
    # (concurrent cell attempt + cross-cell assembly); duplicates share
    # one unit.
    unique = len({item.query for item in report.items})
    assert unique <= computed <= len(queries)
    assert unique <= total_tasks <= 2 * unique
    assert all(
        key.endswith("crosscell") or "/cell-" in key for key in snapshot.shard_tasks
    )
    # Every computed unit records exactly one merge outcome, and every
    # computed item carries its routing plan.
    assert sum(snapshot.merge_wins.values()) == unique
    assert all(item.plan is not None for item in report.items if not item.cached)


LENIENT = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@LENIENT
@given(graph_and_query())
def test_property_sharded_never_beats_exact(instance):
    """Hypothesis sweep: the upper-bound invariant on generated graphs."""
    graph, source, target, keywords, delta = instance
    from repro.core.query import KORQuery

    query = KORQuery(source, target, keywords, delta)
    engine = KOREngine(graph)
    optimum = engine.run(query, algorithm="exact")

    backend = SerialBackend()
    service = ShardedQueryService(
        graph, num_cells=min(2, graph.num_nodes), backend=backend
    )
    result = service.submit(query, algorithm="bucketbound")
    assert result.feasible == optimum.feasible
    if result.feasible:
        assert_sound(graph, query, result)
        assert result.objective_score >= optimum.objective_score - 1e-9
