"""Concurrency regressions: worker-count invariance and failure isolation.

The batch executor's contract is that parallelism is *invisible*: the
same batch with 1 or N workers yields identical result lists, and one
poisoned query marks only its own slot — the cache and every other slot
are untouched.
"""

from __future__ import annotations

import pytest

from repro.core.query import KORQuery
from repro.datasets.queries import QuerySetConfig, generate_query_set
from repro.exceptions import QueryError
from repro.service import BatchError, QueryService

from tests.service.test_differential import fingerprint, random_instance


def result_bytes(results) -> bytes:
    """A byte string capturing everything observable about a result list."""
    return repr([fingerprint(r) for r in results]).encode()


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize("algorithm", ("osscaling", "bucketbound", "greedy2"))
    def test_one_vs_many_workers_byte_identical(self, seed, algorithm):
        engine, queries = random_instance(seed)
        solo = QueryService(engine, cache_capacity=256)
        fleet = QueryService(engine, cache_capacity=256)
        serial = solo.run_batch(queries, algorithm=algorithm, workers=1)
        parallel = fleet.run_batch(queries, algorithm=algorithm, workers=8)
        assert result_bytes(serial) == result_bytes(parallel)

    def test_worker_counts_on_flickr_battery(self, small_flickr_engine):
        config = QuerySetConfig(num_queries=5, num_keywords=2, budget_limit=4.0, seed=3)
        queries = generate_query_set(
            small_flickr_engine.graph,
            small_flickr_engine.index,
            config,
            tables=small_flickr_engine.tables,
        )
        batches = [
            QueryService(small_flickr_engine).run_batch(
                queries, algorithm="bucketbound", workers=workers
            )
            for workers in (1, 2, 6)
        ]
        assert result_bytes(batches[0]) == result_bytes(batches[1]) == result_bytes(batches[2])

    @pytest.mark.parametrize("workers", (1, 4))
    def test_duplicate_slots_share_one_computation(self, workers):
        engine, queries = random_instance(4)
        service = QueryService(engine, cache_capacity=256)
        batch = [queries[0], queries[1], queries[0], queries[0]]
        report = service.execute(batch, algorithm="bucketbound", workers=workers)
        assert report.ok
        results = [item.result for item in report.items]
        assert results[0] is results[2] is results[3]  # one shared computation
        assert fingerprint(results[1]) == fingerprint(
            engine.run(queries[1], algorithm="bucketbound")
        )


class TestFailureIsolation:
    def failing_batch(self, engine, queries):
        bad = KORQuery(engine.graph.num_nodes + 7, 0, (), 4.0)  # source out of range
        return [queries[0], bad, queries[1]], 1

    def test_failure_reported_without_poisoning_others(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        batch, bad_slot = self.failing_batch(engine, queries)

        report = service.execute(batch, algorithm="bucketbound", workers=4)
        assert not report.ok
        assert set(report.errors) == {bad_slot}
        assert isinstance(report.errors[bad_slot], QueryError)
        for item in report.items:
            if item.index != bad_slot:
                assert item.ok
                assert fingerprint(item.result) == fingerprint(
                    engine.run(item.query, algorithm="bucketbound")
                )

    def test_failure_never_enters_the_cache(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        batch, bad_slot = self.failing_batch(engine, queries)

        service.execute(batch, algorithm="bucketbound", workers=4)
        assert len(service.cache) == len(batch) - 1  # only the good slots

        # A retry recomputes the bad slot (it was never cached) and serves
        # the good ones from cache.
        before = service.cache.stats.insertions
        report = service.execute(batch, algorithm="bucketbound", workers=4)
        assert set(report.errors) == {bad_slot}
        assert service.cache.stats.insertions == before  # pure hits, no growth
        assert report.items[0].cached and report.items[2].cached

    def test_run_batch_raises_batch_error_with_full_report(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        batch, bad_slot = self.failing_batch(engine, queries)

        with pytest.raises(BatchError) as excinfo:
            service.run_batch(batch, algorithm="bucketbound")
        report = excinfo.value.report
        assert set(report.errors) == {bad_slot}
        assert sum(item.ok for item in report.items) == len(batch) - 1

    def test_errors_count_in_service_stats(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        batch, _bad_slot = self.failing_batch(engine, queries)
        service.execute(batch, algorithm="bucketbound", workers=2)
        snapshot = service.snapshot()
        assert snapshot.errors == 1
        assert snapshot.queries == len(batch) - 1
