"""Chaos: seeded fault plans through the differential oracle.

Every test installs a deterministic :class:`~repro.service.faults.FaultPlan`
and drives a real workload through the serving stack.  The invariant is
always the same — **faults may cost errors, retries or degraded flags,
never silently-wrong routes**: every response that survives a fault plan
must be fingerprint-identical to the flat engine's answer for the same
query (degraded responses excepted, and those must carry the flag).

SIGKILL-based scenarios (worker storms, lane breakers) run only on the
process backend, which is the only tier with workers to kill.
"""

from __future__ import annotations

import time

import pytest

from repro.core.deadline import Deadline
from repro.core.engine import ALGORITHMS
from repro.exceptions import DeadlineExceeded
from repro.service import ProcessBackend, QueryService, SerialBackend, ThreadBackend
from repro.service.cache import ResultCache
from repro.service.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    active,
    corrupt_then_invalidate,
    injected,
    install,
    worker_rules,
)

from tests.service.test_differential import fingerprint, random_instance

pytestmark = pytest.mark.timeout(300)


def _assert_survivors_match(report, baseline) -> int:
    """The chaos oracle: surviving slots == flat engine, or flagged."""
    failed = 0
    for item, expected in zip(report.items, baseline):
        if item.result is None:
            failed += 1
            continue
        if item.result.degraded:
            assert item.result.feasible
            continue
        assert fingerprint(item.result) == expected, (
            f"slot {item.index} survived a fault plan with a silently "
            f"different answer"
        )
    return failed


class TestPlanMechanics:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(Exception, match="unknown fault kind"):
            FaultRule(kind="set_on_fire")

    def test_negative_counts_are_rejected(self):
        with pytest.raises(Exception, match=">= 0"):
            FaultRule(kind="delay_task", after=-1)

    def test_after_and_times_schedule_exact_events(self):
        plan = FaultPlan([FaultRule(kind="error_task", after=2, times=1)])

        class Task:
            shard = "default"

        for _ in range(2):
            plan.on_task(Task())  # the first two matching events pass
        with pytest.raises(FaultInjected):
            plan.on_task(Task())
        plan.on_task(Task())  # fired out; dormant again
        assert plan.fired() == {0: 1}
        assert plan.log == ["error_task default"]

    def test_install_clear_round_trip(self):
        assert active() is None
        plan = FaultPlan([FaultRule(kind="delay_task", seconds=0.0)])
        with injected(plan) as installed:
            assert installed is plan
            assert active() is plan
            assert worker_rules() == plan.rules
        assert active() is None
        assert worker_rules() == ()

    def test_worker_rules_ship_only_task_side_kinds(self):
        plan = FaultPlan(
            [
                FaultRule(kind="kill_worker"),
                FaultRule(kind="error_task", shard="x"),
                FaultRule(kind="drop_lane", lane=0),
            ]
        )
        kinds = {rule.kind for rule in plan.worker_rules()}
        assert kinds == {"error_task"}


class TestTaskFaults:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_error_fault_poisons_only_its_slots(self, algorithm):
        """In-process backends: exactly ``times`` slots fail with the
        injected error; every other slot matches the flat engine."""
        engine, queries = random_instance(0)
        baseline = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]
        for backend in (SerialBackend(), ThreadBackend(workers=3)):
            plan = FaultPlan([FaultRule(kind="error_task", after=1, times=2)])
            service = QueryService(engine, cache_capacity=0, backend=backend)
            try:
                with injected(plan):
                    report = service.execute(queries, algorithm=algorithm)
            finally:
                backend.close()
            failed = _assert_survivors_match(report, baseline)
            assert failed == len(report.errors)
            assert all(
                isinstance(error, FaultInjected) for error in report.errors.values()
            )
            assert sum(plan.fired().values()) == 2
            # Slots can share a unit (coalescing): at least the fired
            # units failed, and nothing else did.
            assert failed >= 2

    def test_delay_fault_trips_the_deadline(self):
        """A slow-lane fault pushes the search past its deadline: the
        slot fails with DeadlineExceeded, and the retry (rule spent)
        answers correctly."""
        engine, queries = random_instance(1)
        query = queries[0]
        expected = fingerprint(engine.run(query))
        service = QueryService(engine, cache_capacity=64)
        plan = FaultPlan([FaultRule(kind="delay_task", seconds=0.1, times=1)])
        with injected(plan):
            with pytest.raises(DeadlineExceeded):
                service.submit(query, deadline=Deadline.after(0.02))
            assert plan.fired() == {0: 1}
            # Nothing was cached for the expired attempt...
            assert len(service.cache) == 0
            # ...and with the rule spent the same query answers cleanly.
            assert fingerprint(service.submit(query)) == expected


@pytest.mark.parametrize("algorithm", ("bucketbound", "greedy2"))
def test_kill_worker_is_survived_transparently(algorithm):
    """One SIGKILLed worker costs a dead-worker retry, never an answer."""
    engine, queries = random_instance(2)
    baseline = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]
    plan = install(FaultPlan([FaultRule(kind="kill_worker", times=1)]))
    backend = ProcessBackend(workers=2)
    try:
        service = QueryService(engine, cache_capacity=0, backend=backend)
        report = service.execute(queries, algorithm=algorithm)
        assert report.ok
        assert [fingerprint(item.result) for item in report.items] == baseline
        assert plan.fired() == {0: 1}
        assert "kill_worker" in plan.log[0]
        assert backend.pin_stats()["dead_worker_fallbacks"] >= 1
    finally:
        from repro.service import faults

        faults.clear()
        backend.close()


class TestLaneBreaker:
    def test_storm_opens_spills_and_reclosing_probe(self):
        """The full breaker storyline on a two-lane backend:

        1. a ``drop_lane`` storm kills lane 0's worker on every dispatch
           until three consecutive dead-worker retires open its breaker;
        2. while open, pinned work spills to the healthy lane (a
           short-circuit) and completes correctly;
        3. after the backoff, one half-open probe re-admits the lane and
           a completed task closes the breaker.
        """
        engine, queries = random_instance(3)
        expected = fingerprint(engine.run(queries[0]))
        # Five scheduled kills: tasks 1 and 2 lose both their first
        # attempt and their transparent retry (two kills each, two
        # failed slots, two consecutive dead-worker retires), task 3's
        # first attempt is the third retire — threshold reached.
        plan = install(FaultPlan([FaultRule(kind="drop_lane", lane=0, times=5)]))
        backend = ProcessBackend(
            workers=2, breaker_threshold=3, breaker_backoff_seconds=0.5
        )
        try:
            service = QueryService(engine, cache_capacity=0, backend=backend)

            for _ in range(2):
                report = service.execute([queries[0]])
                assert not report.ok

            # The third storm batch opens the breaker; its dead-worker
            # retry spills to lane 1 and still answers correctly.
            report = service.execute([queries[0]])
            assert report.ok
            assert fingerprint(report.items[0].result) == expected
            stats = backend.breaker_stats()
            assert stats["opened"] == 1
            assert stats["short_circuits"] >= 1
            assert stats["lanes"][0]["state"] in ("open", "half_open")
            assert stats["lanes"][1]["state"] == "closed"
            assert sum(plan.fired().values()) == 5

            # While open, new work routes around lane 0 entirely.
            report = service.execute([queries[1]])
            assert report.ok
            assert backend.breaker_stats()["opened"] == 1

            # Past the backoff, the pinned lane is probed half-open and
            # one completed task closes the breaker again.
            time.sleep(0.6)
            report = service.execute([queries[0]])
            assert report.ok
            assert fingerprint(report.items[0].result) == expected
            stats = backend.breaker_stats()
            assert stats["closed"] == 1
            assert stats["half_open_probes"] >= 1
            assert all(lane["state"] == "closed" for lane in stats["lanes"])
            assert all(lane["failures"] == 0 for lane in stats["lanes"])
        finally:
            from repro.service import faults

            faults.clear()
            backend.close()


class TestChaosDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mixed_plan_in_process(self, algorithm):
        """Delay + error chaos, serial and thread: zero silent wrongs."""
        engine, queries = random_instance(4)
        baseline = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]
        for backend in (SerialBackend(), ThreadBackend(workers=3)):
            plan = FaultPlan(
                [
                    FaultRule(kind="delay_task", seconds=0.005, times=2),
                    FaultRule(kind="error_task", after=3, times=2),
                ]
            )
            service = QueryService(engine, cache_capacity=0, backend=backend)
            try:
                with injected(plan):
                    report = service.execute(queries, algorithm=algorithm)
            finally:
                backend.close()
            _assert_survivors_match(report, baseline)
            assert all(
                isinstance(error, FaultInjected) for error in report.errors.values()
            )

    def test_mixed_plan_process_backend_all_algorithms(self):
        """Worker-side chaos on one process backend, all six algorithms.

        Task-side rules ship through the pool initializer, so each
        worker runs its own copy of the schedule; whatever subset of
        slots the faults hit, no surviving answer may differ from the
        flat engine.
        """
        engine, queries = random_instance(5)
        plan = install(
            FaultPlan(
                [
                    FaultRule(kind="delay_task", seconds=0.002, times=2),
                    FaultRule(kind="error_task", after=2, times=1),
                ]
            )
        )
        backend = ProcessBackend(workers=2)
        try:
            service = QueryService(engine, cache_capacity=0, backend=backend)
            for algorithm in ALGORITHMS:
                baseline = [
                    fingerprint(engine.run(q, algorithm=algorithm)) for q in queries
                ]
                report = service.execute(queries, algorithm=algorithm)
                _assert_survivors_match(report, baseline)
                assert all(
                    isinstance(error, FaultInjected)
                    for error in report.errors.values()
                )
        finally:
            from repro.service import faults

            faults.clear()
            backend.close()


class TestChaosMidWave:
    """Fault plans against the kernel-wave dispatch path.

    Batches ship as :class:`~repro.service.backends.WaveTask` kernel
    waves by default, so these plans hit the wave machinery head-on:
    parent-side kills land while a whole wave is in flight on one lane
    (the dead-worker retry must replay the *wave*), and task-side rules
    fire per member through the wave's ``on_member`` hook mid-batch.
    The oracle is unchanged: degraded-or-identical, never silently
    wrong.
    """

    def test_kill_worker_mid_wave_is_survived(self):
        """SIGKILL under an in-flight kernel wave: the lane rebuild
        replays the whole wave and every slot still answers exactly."""
        engine, queries = random_instance(7)
        baseline = [fingerprint(engine.run(q)) for q in queries]
        plan = install(FaultPlan([FaultRule(kind="kill_worker", times=1)]))
        backend = ProcessBackend(workers=2)
        try:
            service = QueryService(engine, cache_capacity=0, backend=backend)
            report = service.execute(queries)  # wave kernels on by default
            assert report.ok
            assert [fingerprint(item.result) for item in report.items] == baseline
            assert plan.fired() == {0: 1}
            assert backend.pin_stats()["dead_worker_fallbacks"] >= 1
        finally:
            from repro.service import faults

            faults.clear()
            backend.close()

    @pytest.mark.parametrize("algorithm", ("osscaling", "bucketbound"))
    def test_error_fault_fires_per_wave_member(self, algorithm):
        """Task-side error rules hit individual wave members: exactly
        ``times`` units fail, survivors of the same wave stay exact."""
        engine, queries = random_instance(8)
        baseline = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]
        for backend in (SerialBackend(), ThreadBackend(workers=3)):
            plan = FaultPlan([FaultRule(kind="error_task", after=2, times=2)])
            service = QueryService(engine, cache_capacity=0, backend=backend)
            try:
                with injected(plan):
                    report = service.execute(queries, algorithm=algorithm)
            finally:
                backend.close()
            failed = _assert_survivors_match(report, baseline)
            assert failed == len(report.errors) >= 2
            assert all(
                isinstance(error, FaultInjected) for error in report.errors.values()
            )
            assert sum(plan.fired().values()) == 2

    def test_delay_fault_mid_wave_trips_the_wave_deadline(self):
        """A delayed member admission burns the wave's deadline: slots
        fail loudly with DeadlineExceeded (or the injected fault), none
        answer wrong, and the expired wave caches nothing."""
        engine, queries = random_instance(9)
        baseline = [fingerprint(engine.run(q)) for q in queries]
        plan = FaultPlan([FaultRule(kind="delay_task", seconds=0.1, times=1)])
        service = QueryService(engine, cache_capacity=64)
        with injected(plan):
            report = service.execute(queries, deadline=Deadline.after(0.02))
        _assert_survivors_match(report, baseline)
        assert not report.ok
        for error in report.errors.values():
            assert isinstance(error, (DeadlineExceeded, FaultInjected))
        assert len(service.cache) == sum(1 for item in report.items if item.ok)


class TestCacheFault:
    def test_corrupt_then_invalidate_is_unobservable(self):
        engine, queries = random_instance(6)
        good = engine.run(queries[0])
        bogus = engine.run(queries[1])
        cache = ResultCache(8)
        cache.put("k", good)

        stale_epoch = cache.epoch
        new_epoch = corrupt_then_invalidate(cache, "k", bogus)
        assert new_epoch != stale_epoch
        # The corrupt entry was wiped with the epoch...
        assert cache.get("k") is None
        assert cache.get("k", epoch=new_epoch) is None
        # ...and an in-flight write that captured the old epoch is
        # dropped on arrival: readers can never observe the bogus route.
        cache.put("k", bogus, epoch=stale_epoch)
        assert cache.get("k", epoch=new_epoch) is None
