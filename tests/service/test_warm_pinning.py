"""Warm-pinning: shard→worker affinity on the ProcessBackend.

The acceptance contract: with a multi-worker process backend, repeat
traffic for a shard shows a pin-hit rate > 0 in the service snapshot and
does **not** rebuild that shard's engine in other workers (asserted via
the per-worker build counters the workers expose).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.exceptions import QueryError
from repro.service import ProcessBackend, ShardTask, ShardedQueryService

from tests.service.test_differential import random_instance


def build_backend(**kwargs) -> ProcessBackend:
    kwargs.setdefault("workers", 2)
    # A generous spill margin keeps routing deterministic in tests that
    # assert *affinity*; the spill test sets its own margin.
    kwargs.setdefault("spill_margin", 1_000)
    return ProcessBackend(**kwargs)


class TestAffinity:
    def test_repeat_traffic_builds_engine_in_exactly_one_worker(self):
        engine_a, queries_a = random_instance(0)
        engine_b, queries_b = random_instance(7)
        backend = build_backend()
        try:
            handle_a = backend.register_engine(engine_a, key="shard-a")
            handle_b = backend.register_engine(engine_b, key="shard-b")
            tasks = [
                ShardTask.build(handle_a.key, queries_a[i % len(queries_a)], "bucketbound", {})
                for i in range(6)
            ] + [
                ShardTask.build(handle_b.key, queries_b[i % len(queries_b)], "bucketbound", {})
                for i in range(6)
            ]
            for _ in range(2):  # two rounds of repeat traffic
                outcomes = backend.run_tasks(tasks)
                assert all(outcome.ok for outcome in outcomes)

            pins = backend.pin_stats()
            assert pins["assignments"] == 2  # one pin per shard
            assert pins["hits"] > 0
            assert pins["misses"] == 0  # nothing saturated at this margin

            workers = backend.worker_stats()
            builds_a = [stats["builds"].get("shard-a", 0) for stats in workers.values()]
            builds_b = [stats["builds"].get("shard-b", 0) for stats in workers.values()]
            # Each engine was materialised exactly once, in exactly one
            # worker — the whole point of pinning.
            assert sorted(builds_a) == [0, 1]
            assert sorted(builds_b) == [0, 1]
        finally:
            backend.close()

    def test_sharded_service_snapshot_reports_pin_hits(self):
        """Acceptance: pin-hit rate > 0 through the full service stack."""
        engine, queries = random_instance(1)
        backend = build_backend()
        try:
            service = ShardedQueryService(
                engine.graph,
                num_cells=min(2, engine.graph.num_nodes),
                backend=backend,
                cache_capacity=0,  # force every round through the backend
            )
            for _ in range(3):
                report = service.execute(queries, algorithm="bucketbound")
                assert all(item.result is not None or item.error for item in report.items)
            snapshot = service.snapshot()
            assert snapshot.pinning, "snapshot should carry pinning counters"
            assert snapshot.pinning["hits"] > 0
            total = snapshot.pinning["hits"] + snapshot.pinning["misses"]
            assert snapshot.pinning["hits"] / total > 0.0
            service.close()
        finally:
            backend.close()

    def test_saturated_pin_spills_to_least_loaded_lane(self):
        engine, queries = random_instance(0)
        backend = build_backend(spill_margin=0)
        try:
            handle = backend.register_engine(engine, key="hot-shard")
            # A burst submitted without waiting: the pinned lane's queue
            # grows, and with margin 0 later tasks must spill.
            futures = [
                backend.submit_task(
                    ShardTask.build(handle.key, queries[i % len(queries)], "bucketbound", {})
                )
                for i in range(8)
            ]
            outcomes = [future.result() for future in futures]
            assert all(outcome.ok for outcome in outcomes)
            pins = backend.pin_stats()
            assert pins["assignments"] == 1
            assert pins["misses"] > 0  # the burst outran the single lane
        finally:
            backend.close()


class TestWorkerEngineLRU:
    def test_budget_evicts_and_rebuilds_without_wrong_answers(self):
        engine_a, queries_a = random_instance(0)
        engine_b, queries_b = random_instance(7)
        expected_a = engine_a.run(queries_a[0], algorithm="bucketbound")
        expected_b = engine_b.run(queries_b[0], algorithm="bucketbound")
        # One lane, a budget below any engine's weight: every shard
        # switch evicts the resident engine and rebuilds on return.
        backend = ProcessBackend(workers=1, max_worker_engine_bytes=1, spill_margin=1_000)
        try:
            handle_a = backend.register_engine(engine_a, key="lru-a")
            handle_b = backend.register_engine(engine_b, key="lru-b")
            plan = [
                ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {}),
                ShardTask.build(handle_b.key, queries_b[0], "bucketbound", {}),
                ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {}),
            ]
            outcomes = backend.run_tasks(plan)
            assert all(outcome.ok for outcome in outcomes)
            assert outcomes[0].result.objective_score == expected_a.objective_score
            assert outcomes[1].result.objective_score == expected_b.objective_score
            assert outcomes[2].result.objective_score == expected_a.objective_score

            (stats,) = backend.worker_stats().values()
            assert stats["evictions"] >= 2  # a evicted by b, b by a's return
            assert stats["builds"]["lru-a"] == 2  # rebuilt after eviction
            assert len(stats["resident"]) == 1  # budget keeps exactly one
        finally:
            backend.close()

    def test_no_budget_keeps_every_engine_resident(self):
        engine_a, queries_a = random_instance(0)
        engine_b, queries_b = random_instance(7)
        backend = ProcessBackend(workers=1, spill_margin=1_000)
        try:
            handle_a = backend.register_engine(engine_a, key="res-a")
            handle_b = backend.register_engine(engine_b, key="res-b")
            outcomes = backend.run_tasks(
                [
                    ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {}),
                    ShardTask.build(handle_b.key, queries_b[0], "bucketbound", {}),
                    ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {}),
                ]
            )
            assert all(outcome.ok for outcome in outcomes)
            (stats,) = backend.worker_stats().values()
            assert stats["evictions"] == 0
            assert stats["builds"] == {"res-a": 1, "res-b": 1}
            assert sorted(stats["resident"]) == ["res-a", "res-b"]
        finally:
            backend.close()


class TestDeadWorkerFallback:
    def test_killed_worker_is_replaced_and_traffic_continues(self):
        engine, queries = random_instance(0)
        expected = engine.run(queries[0], algorithm="bucketbound")
        backend = build_backend(workers=2)
        try:
            handle = backend.register_engine(engine, key="fragile")
            first = backend.run_tasks(
                [ShardTask.build(handle.key, queries[0], "bucketbound", {})]
            )
            assert first[0].ok

            # Kill the pinned worker out from under the backend.
            workers = backend.worker_stats()
            pinned_lane = backend._pins[handle.key]  # noqa: SLF001 - test introspection
            os.kill(workers[pinned_lane]["pid"], signal.SIGKILL)
            time.sleep(0.1)

            # Traffic for the shard must keep flowing: the dead lane is
            # detected (at submit or completion), rebuilt, and the task
            # retried transparently.
            second = backend.run_tasks(
                [ShardTask.build(handle.key, queries[0], "bucketbound", {})]
            )
            assert second[0].ok, f"fallback failed: {second[0].error!r}"
            assert second[0].result.objective_score == expected.objective_score
            assert backend.pin_stats()["dead_worker_fallbacks"] >= 1
        finally:
            backend.close()


    def test_one_death_under_a_burst_counts_once_and_keeps_lanes_sane(self):
        """Several tasks sunk by the same dead worker must trigger one
        lane rebuild (not one per task) and leave pending counts at 0."""
        engine, queries = random_instance(0)
        backend = build_backend(workers=2)
        try:
            handle = backend.register_engine(engine, key="burst")
            warm = backend.run_tasks(
                [ShardTask.build(handle.key, queries[0], "bucketbound", {})]
            )
            assert warm[0].ok

            workers = backend.worker_stats()
            pinned_lane = backend._pins[handle.key]  # noqa: SLF001 - test introspection
            os.kill(workers[pinned_lane]["pid"], signal.SIGKILL)
            time.sleep(0.1)

            futures = [
                backend.submit_task(
                    ShardTask.build(handle.key, queries[i % len(queries)], "bucketbound", {})
                )
                for i in range(4)
            ]
            outcomes = [future.result(timeout=60.0) for future in futures]
            assert all(outcome.ok for outcome in outcomes), [o.error for o in outcomes]
            # One dead worker == one fallback, however many tasks it sank.
            assert backend.pin_stats()["dead_worker_fallbacks"] == 1
            # Stale-generation completions must not drive pending negative.
            assert all(lane.pending == 0 for lane in backend._lanes)  # noqa: SLF001
        finally:
            backend.close()


class TestConstructionGuards:
    def test_invalid_knobs_are_rejected(self):
        with pytest.raises(QueryError):
            ProcessBackend(workers=0)
        with pytest.raises(QueryError):
            ProcessBackend(max_worker_engine_bytes=-1)
        with pytest.raises(QueryError):
            ProcessBackend(spill_margin=-1)
        with pytest.raises(QueryError):
            ProcessBackend(max_in_flight=0)


class TestAdmissionSlots:
    """``max_in_flight`` accounting across dead-worker rebuild+retry.

    Regression guard: the admission slot taken at ``submit_task`` must
    be released exactly once per task even when the task's worker is
    SIGKILLed and the backend rebuilds the lane and retries — a leaked
    slot would shrink admission until it deadlocks.
    """

    def test_repeated_sigkill_releases_each_slot_exactly_once(self):
        import threading

        engine, queries = random_instance(0)
        backend = build_backend(workers=2, max_in_flight=2)
        try:
            handle = backend.register_engine(engine, key="slots")
            warm = backend.run_tasks(
                [ShardTask.build(handle.key, queries[0], "bucketbound", {})]
            )
            assert warm[0].ok
            assert backend.in_flight == 0

            for round_number in range(3):
                workers = backend.worker_stats()
                pinned_lane = backend._pins[handle.key]  # noqa: SLF001 - test introspection
                os.kill(workers[pinned_lane]["pid"], signal.SIGKILL)
                time.sleep(0.1)
                futures = [
                    backend.submit_task(
                        ShardTask.build(
                            handle.key, queries[i % len(queries)], "bucketbound", {}
                        )
                    )
                    for i in range(2)
                ]
                outcomes = [future.result(timeout=60.0) for future in futures]
                assert all(outcome.ok for outcome in outcomes), [
                    outcome.error for outcome in outcomes
                ]
                # The invariant under test: every retried task gave its
                # slot back (exactly once — a double release would let
                # in_flight go negative on the next round's peak check).
                assert backend.in_flight == 0, f"slot leaked in round {round_number}"

            # Admission must still turn over: a burst larger than
            # max_in_flight completes only if all slots were returned.
            # Submit from a helper thread so a leak shows up as a test
            # failure, not an indefinite hang on the admission gate.
            box: dict = {}

            def submit_burst():
                box["futures"] = [
                    backend.submit_task(
                        ShardTask.build(
                            handle.key, queries[i % len(queries)], "bucketbound", {}
                        )
                    )
                    for i in range(5)
                ]

            submitter = threading.Thread(target=submit_burst)
            submitter.start()
            submitter.join(timeout=30.0)
            assert not submitter.is_alive(), "admission gate deadlocked: slot leak"
            assert all(f.result(timeout=60.0).ok for f in box["futures"])
            assert backend.in_flight == 0
            assert backend.peak_in_flight <= 2
        finally:
            backend.close()
