"""Wave dispatch through the serving stack: containment and fallbacks.

The batch executor ships unique computations as :class:`WaveTask` work
by default.  These tests pin the three containment tiers the wave path
adds on top of the kernel's own per-member isolation:

1. a poisoned member (unbindable query, injected fault) errors only its
   slot, on every backend;
2. a *wave-level* failure inside the worker degrades to the per-query
   path (:func:`run_wave_on_engine`'s fallback), so survivors still
   answer;
3. a wave whose *submission* breaks (future raises) is resubmitted by
   the batch executor member by member as plain shard tasks.

Plus the bit-identity guarantee: ``wave_kernels=True`` vs ``False``
must be observationally indistinguishable in the report.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ALGORITHMS
from repro.core.query import KORQuery
from repro.exceptions import QueryError
from repro.service import (
    ProcessBackend,
    QueryService,
    SerialBackend,
    WaveTask,
    run_wave_on_engine,
)
from repro.service.backends import TaskOutcome
from repro.service.batch import execute_batch
from repro.service.cache import ResultCache

from tests.service.test_differential import fingerprint, random_instance

pytestmark = pytest.mark.timeout(300)


def _report_view(report):
    return [
        (item.index, fingerprint(item.result))
        if item.error is None
        else (item.index, "error", type(item.error).__name__)
        for item in report.items
    ]


class TestWaveBatchDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_wave_and_per_query_batches_are_identical(self, algorithm, service_backend):
        engine, queries = random_instance(0)
        service_backend.register_engine(engine, key="wave-diff")
        handle = service_backend._handles["wave-diff"]
        reports = []
        for wave_kernels in (True, False):
            report = execute_batch(
                engine,
                ResultCache(0),
                queries,
                algorithm=algorithm,
                backend=service_backend,
                handle=handle,
                wave_kernels=wave_kernels,
            )
            reports.append(_report_view(report))
        assert reports[0] == reports[1]

    def test_small_wave_size_chunks_correctly(self, service_backend):
        """wave_size=2 forces several waves per batch; slots stay exact."""
        engine, queries = random_instance(1)
        service_backend.register_engine(engine, key="chunks")
        handle = service_backend._handles["chunks"]
        baseline = [fingerprint(engine.run(q)) for q in queries]
        report = execute_batch(
            engine,
            ResultCache(0),
            queries,
            backend=service_backend,
            handle=handle,
            wave_size=2,
        )
        assert report.ok
        assert [fingerprint(item.result) for item in report.items] == baseline

    def test_service_toggle_disables_waves(self):
        """wave_kernels=False on the service still answers identically."""
        engine, queries = random_instance(2)
        on = QueryService(engine, cache_capacity=0, wave_kernels=True)
        off = QueryService(engine, cache_capacity=0, wave_kernels=False)
        assert _report_view(on.execute(queries)) == _report_view(off.execute(queries))


class TestPoisonedMember:
    def test_unbindable_member_poisons_only_its_slot(self, service_backend):
        """Tier 1: a query that cannot bind errors its own slot; every
        other slot matches the flat engine (kernel survivors included)."""
        engine, queries = random_instance(3)
        bad = KORQuery(9_999, queries[0].target, queries[0].keywords, 5.0)
        batch = list(queries[:4]) + [bad] + list(queries[4:])
        service_backend.register_engine(engine, key="poison")
        handle = service_backend._handles["poison"]
        report = execute_batch(
            engine, ResultCache(0), batch, backend=service_backend, handle=handle
        )
        assert set(report.errors) == {4}
        assert isinstance(report.errors[4], QueryError)
        for item in report.items:
            if item.index != 4:
                assert fingerprint(item.result) == fingerprint(engine.run(item.query))

    def test_poisoned_member_error_crosses_the_process_boundary(self):
        engine, queries = random_instance(4)
        bad = KORQuery(9_999, queries[0].target, queries[0].keywords, 5.0)
        backend = ProcessBackend(workers=2)
        try:
            handle = backend.register_engine(engine, key="remote-poison")
            task = WaveTask.build("remote-poison", [queries[0], bad, queries[1]], "bucketbound")
            outcomes = backend.submit_wave(task).result()
            assert outcomes[0].ok and outcomes[2].ok
            assert isinstance(outcomes[1].error, QueryError)
            assert fingerprint(outcomes[0].result) == fingerprint(engine.run(queries[0]))
        finally:
            backend.close()


class TestWaveLevelFallback:
    def test_broken_kernel_degrades_to_per_query(self, monkeypatch):
        """Tier 2: if run_wave itself explodes, run_wave_on_engine
        re-runs every member through the scalar task path."""
        import repro.service.backends as backends_mod

        engine, queries = random_instance(5)

        def boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(backends_mod, "_kernel_run_wave", boom)
        task = WaveTask.build("s", queries, "osscaling")
        outcomes = run_wave_on_engine(engine, task)
        assert len(outcomes) == len(queries)
        assert all(o.ok for o in outcomes)
        assert [fingerprint(o.result) for o in outcomes] == [
            fingerprint(engine.run(q, algorithm="osscaling")) for q in queries
        ]

    def test_broken_wave_submission_resubmits_members(self):
        """Tier 3: a backend whose wave futures fail outright still
        serves the batch — the executor falls back to shard tasks."""

        class BrokenWaveBackend(SerialBackend):
            def __init__(self):
                super().__init__()
                self.wave_submissions = 0

            def _submit_wave(self, task):
                self.wave_submissions += 1
                from concurrent.futures import Future

                future: Future = Future()
                future.set_exception(RuntimeError("lane sank mid-wave"))
                return future

        # SerialBackend is in_process; flip the flag so the executor
        # takes the task path, where wave *submissions* can break.
        engine, queries = random_instance(6)
        backend = BrokenWaveBackend()
        backend.in_process = False
        handle = backend.register_engine(engine, key="broken")
        report = execute_batch(
            engine, ResultCache(0), queries, backend=backend, handle=handle
        )
        assert backend.wave_submissions >= 1
        assert report.ok
        assert [fingerprint(item.result) for item in report.items] == [
            fingerprint(engine.run(q)) for q in queries
        ]


class TestWaveTaskShape:
    def test_build_normalises_params(self):
        q = KORQuery(0, 1, ("a",), 5.0)
        task = WaveTask.build("s", [q], "osscaling", {"epsilon": 0.5, "use_strategy1": True})
        assert task.params == (("epsilon", 0.5), ("use_strategy1", True))
        assert task.queries == (q,)
        member = task.member_task(q)
        assert (member.shard, member.query, member.algorithm, member.params) == (
            "s",
            q,
            "osscaling",
            task.params,
        )

    def test_unregistered_shard_fails_every_slot(self, service_backend):
        engine, queries = random_instance(0)
        task = WaveTask.build("nowhere", queries[:3], "bucketbound")
        outcomes = service_backend.submit_wave(task).result()
        assert len(outcomes) == 3
        assert all(isinstance(o.error, QueryError) for o in outcomes)

    def test_wave_occupies_one_admission_slot(self):
        engine, queries = random_instance(1)
        backend = SerialBackend(max_in_flight=1)
        try:
            backend.register_engine(engine, key="adm")
            task = WaveTask.build("adm", queries, "greedy")
            outcomes = backend.submit_wave(task).result()
            assert len(outcomes) == len(queries)
            assert backend.peak_in_flight == 1
        finally:
            backend.close()


class TestWorkerKernelCaches:
    def test_repeat_waves_reuse_worker_state(self):
        """Two waves on one process backend: the second reuses the
        worker's engine and kernel context, answers stay identical."""
        engine, queries = random_instance(7)
        backend = ProcessBackend(workers=1)
        try:
            backend.register_engine(engine, key="warm")
            expected = [fingerprint(engine.run(q, algorithm="osscaling")) for q in queries]
            for _ in range(2):
                task = WaveTask.build("warm", queries, "osscaling")
                outcomes = backend.submit_wave(task).result()
                assert [fingerprint(o.result) for o in outcomes] == expected
            stats = backend.worker_stats()
            builds = next(iter(stats.values()))["builds"]
            assert builds.get("warm") == 1  # engine built once, not per wave
        finally:
            backend.close()
