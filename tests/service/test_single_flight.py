"""Single-flight miss protection in the sync services.

Concurrent identical misses used to all compute; now exactly one caller
per canonical key runs the engine while the rest wait for its result —
the same coalescing key (and counter surface) the async front-end uses.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import QueryError
from repro.service import QueryService, ResultCache, ShardedQueryService

from tests.service.test_differential import fingerprint, random_instance


class CountingEngine:
    """Engine proxy that counts (and can delay) ``run`` calls."""

    def __init__(self, engine, delay_seconds: float = 0.0):
        self._engine = engine
        self._delay = delay_seconds
        self._lock = threading.Lock()
        self.runs = 0

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def run(self, *args, **kwargs):
        with self._lock:
            self.runs += 1
        if self._delay:
            time.sleep(self._delay)
        return self._engine.run(*args, **kwargs)


def hammer(fn, threads: int):
    """Run *fn* from *threads* threads at once; return results/errors."""
    barrier = threading.Barrier(threads)
    results: list = [None] * threads
    errors: list = [None] * threads

    def body(slot: int) -> None:
        barrier.wait()
        try:
            results[slot] = fn()
        except Exception as error:  # noqa: BLE001 - inspected by the test
            errors[slot] = error

    workers = [threading.Thread(target=body, args=(slot,)) for slot in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30.0)
    return results, errors


class TestResultCacheGetOrCompute:
    def test_concurrent_identical_misses_compute_once(self):
        cache = ResultCache(capacity=16)
        calls = []
        gate = threading.Event()

        def compute():
            calls.append(1)
            gate.wait(5.0)
            return object()

        def one():
            # Release the leader once everyone is inside get_or_compute.
            threading.Timer(0.05, gate.set).start()
            return cache.get_or_compute("key", compute)

        results, errors = hammer(one, threads=6)
        assert not any(errors)
        assert len(calls) == 1
        values = {id(result[0]) for result in results}
        assert len(values) == 1  # everyone got the same object
        hows = sorted(result[1] for result in results)
        assert hows.count("computed") == 1
        assert hows.count("coalesced") == 5
        assert cache.stats.coalesced == 5

    def test_leader_error_propagates_and_nothing_is_cached(self):
        cache = ResultCache(capacity=16)
        boom = QueryError("boom")

        def compute():
            time.sleep(0.05)
            raise boom

        results, errors = hammer(lambda: cache.get_or_compute("key", compute), threads=4)
        assert all(result is None for result in results)
        assert all(error is boom for error in errors)
        assert len(cache) == 0
        # A later call recomputes (the failed flight is gone).
        recovered = cache.get_or_compute("key", lambda: ("ok", 1))
        assert recovered == (("ok", 1), "computed")

    def test_hit_path_skips_the_flight_table(self):
        cache = ResultCache(capacity=16)
        cache.put("key", "value")
        result, how = cache.get_or_compute("key", lambda: pytest.fail("must not compute"))
        assert (result, how) == ("value", "hit")

    def test_store_false_coalesces_without_writing(self):
        cache = ResultCache(capacity=16)
        result, how = cache.get_or_compute("key", lambda: "computed-value", store=False)
        assert (result, how) == ("computed-value", "computed")
        assert "key" not in cache

    def test_invalidate_mid_flight_stops_new_coalescing(self):
        """A caller arriving after invalidate() must not be handed a
        computation that started against the retired engine."""
        cache = ResultCache(capacity=16)
        leader_started = threading.Event()
        leader_gate = threading.Event()

        def slow_compute():
            leader_started.set()
            leader_gate.wait(10.0)
            return "old-engine-result"

        leader_box: list = []
        leader = threading.Thread(
            target=lambda: leader_box.append(cache.get_or_compute("key", slow_compute))
        )
        leader.start()
        assert leader_started.wait(5.0)

        cache.invalidate()  # the engine was swapped while the leader runs
        # A post-invalidate caller starts its own flight instead of
        # coalescing onto the old-engine computation.
        fresh = cache.get_or_compute("key", lambda: "new-engine-result")
        assert fresh == ("new-engine-result", "computed")

        leader_gate.set()
        leader.join(timeout=10.0)
        assert leader_box == [("old-engine-result", "computed")]
        assert cache.stats.coalesced == 0

    def test_epoch_guard_drops_stale_write_but_serves_result(self):
        cache = ResultCache(capacity=16)
        epoch = cache.epoch

        def compute():
            cache.invalidate()  # the engine was swapped mid-computation
            return "stale-but-correct-for-the-caller"

        result, how = cache.get_or_compute("key", compute, epoch=epoch)
        assert result == "stale-but-correct-for-the-caller"
        assert how == "computed"
        assert "key" not in cache  # the epoch guard dropped the write
        assert cache.stats.stale_writes == 1


class TestServiceSingleFlight:
    def test_flat_service_concurrent_submits_run_engine_once(self):
        engine, queries = random_instance(0)
        counting = CountingEngine(engine, delay_seconds=0.05)
        service = QueryService(counting, cache_capacity=64)
        n = 6

        results, errors = hammer(
            lambda: service.submit(queries[0], algorithm="bucketbound"), threads=n
        )
        assert not any(errors)
        assert counting.runs == 1
        assert all(result is results[0] for result in results)
        snapshot = service.snapshot()
        assert snapshot.coalesced == n - 1
        assert snapshot.cache_misses == 1
        assert snapshot.cache_hits == n - 1
        assert service.cache.stats.coalesced == n - 1
        # Differential sanity: the shared answer is the engine's answer.
        assert fingerprint(results[0]) == fingerprint(
            engine.run(queries[0], algorithm="bucketbound")
        )

    def test_flat_service_error_does_not_poison_followups(self):
        engine, queries = random_instance(0)
        from repro.core.query import KORQuery

        bad = KORQuery(engine.graph.num_nodes + 7, 0, (), 4.0)
        service = QueryService(engine, cache_capacity=64)
        results, errors = hammer(
            lambda: service.submit(bad, algorithm="bucketbound"), threads=3
        )
        assert all(result is None for result in results)
        assert all(isinstance(error, QueryError) for error in errors)
        assert len(service.cache) == 0
        good = service.submit(queries[0], algorithm="bucketbound")
        assert fingerprint(good) == fingerprint(
            engine.run(queries[0], algorithm="bucketbound")
        )

    def test_sharded_service_concurrent_submits_share_one_wave(self):
        engine, queries = random_instance(1)
        service = ShardedQueryService(
            engine.graph, num_cells=min(2, engine.graph.num_nodes), seed=4
        )
        try:
            n = 6
            results, errors = hammer(
                lambda: service.submit(queries[0], algorithm="bucketbound"), threads=n
            )
            assert not any(errors)
            assert all(result is results[0] for result in results)
            snapshot = service.snapshot()
            # The hard guarantee: one scatter wave total (at most one
            # task per attempt kind) — nothing recomputed, whether a
            # waiter coalesced onto the flight or arrived just after it
            # landed and hit the cache (both are timing-dependent).
            assert sum(snapshot.shard_tasks.values()) <= 2
            assert snapshot.cache_misses == 1
            assert snapshot.cache_hits == n - 1
            assert fingerprint(results[0]) == fingerprint(
                service.submit(queries[0], algorithm="bucketbound")
            )
        finally:
            service.close()

    def test_distinct_keys_do_not_coalesce(self):
        engine, queries = random_instance(2)
        counting = CountingEngine(engine)
        service = QueryService(counting, cache_capacity=64)
        distinct = [q for q in queries[:4]]
        results, errors = hammer(
            lambda: [
                service.submit(query, algorithm="bucketbound") for query in distinct
            ],
            threads=2,
        )
        assert not any(errors)
        # Every distinct key computed at least once, at most once per
        # key (coalescing or cache hits absorb the second thread).
        assert counting.runs == len(set(distinct))


class TestEpochScopedFlights:
    """Regressions: dead flights are removed, and the flight table is
    keyed by the *caller's* captured epoch, not the table's current one."""

    def test_failed_leader_leaves_no_flight_entry_behind(self):
        cache = ResultCache(capacity=16)

        def boom():
            raise QueryError("dead flight")

        with pytest.raises(QueryError, match="dead flight"):
            cache.get_or_compute("key", boom)
        # The flight table is empty: a later caller computes immediately
        # instead of waiting on (or coalescing onto) the dead flight.
        assert cache._in_flight == {}  # noqa: SLF001 - regression introspection
        assert cache.get_or_compute("key", lambda: "ok") == ("ok", "computed")
        assert cache.stats.coalesced == 0

    def test_failed_leader_with_captured_epoch_also_cleans_up(self):
        cache = ResultCache(capacity=16)
        epoch = cache.epoch

        def boom():
            raise QueryError("epoch flight died")

        with pytest.raises(QueryError):
            cache.get_or_compute("key", boom, epoch=epoch)
        assert cache._in_flight == {}  # noqa: SLF001 - regression introspection
        recovered = cache.get_or_compute("key", lambda: "fresh", epoch=cache.epoch)
        assert recovered == ("fresh", "computed")

    def test_leader_that_captured_retired_epoch_does_not_collect_fresh_waiters(self):
        """The capture-races-invalidate edge: a leader holding a retired
        epoch must register its flight under *that* epoch, so callers
        who captured the new epoch start their own computation instead
        of coalescing onto the stale engine's answer."""
        cache = ResultCache(capacity=16)
        stale_epoch = cache.epoch
        cache.invalidate()  # the leader's epoch capture raced this

        entered = threading.Event()
        release = threading.Event()

        def stale_compute():
            entered.set()
            release.wait(10.0)
            return "stale-engine-answer"

        leader_box: list = []
        leader = threading.Thread(
            target=lambda: leader_box.append(
                cache.get_or_compute("key", stale_compute, epoch=stale_epoch)
            )
        )
        leader.start()
        assert entered.wait(5.0)

        # A fresh-epoch caller must become its own leader immediately —
        # before the fix it coalesced onto the stale flight (and would
        # block here until the stale leader finished).
        fresh = cache.get_or_compute(
            "key", lambda: "fresh-engine-answer", epoch=cache.epoch
        )
        assert fresh == ("fresh-engine-answer", "computed")
        assert cache.stats.coalesced == 0

        release.set()
        leader.join(timeout=10.0)
        assert leader_box == [("stale-engine-answer", "computed")]
        # The stale leader's write-back was epoch-dropped: the store
        # serves the fresh engine's answer.
        assert cache.get("key") == "fresh-engine-answer"
        assert cache.stats.stale_writes == 1
