"""Differential testing: QueryService vs sequential KOREngine.

For randomized graphs and query batteries, batch serving (with caching,
in-batch dedup, shared candidate sets and thread fan-out) must be
*semantically indistinguishable* from a plain sequential ``engine.run``
loop — for every algorithm in ``ALGORITHMS``, cached or not.

Graphs stay tiny and edge weights >= 1 so the ``exhaustive`` baseline's
walk enumeration stays bounded.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.graph.builder import GraphBuilder
from repro.service import QueryService

KEYWORD_POOL = ("pub", "mall", "cafe", "park", "imax")
WEIGHTS = (1.0, 1.5, 2.0, 3.0)


def fingerprint(result):
    """Everything observable about a result except timing counters."""
    return (
        result.found,
        result.feasible,
        result.covers_keywords,
        result.within_budget,
        tuple(result.route.nodes) if result.route is not None else None,
        round(result.objective_score, 9),
        round(result.budget_score, 9),
        result.failure_reason,
    )


def random_instance(seed: int):
    """A seeded random graph + engine + query battery."""
    rng = random.Random(seed)
    n = rng.randint(3, 6)
    builder = GraphBuilder()
    for _ in range(n):
        count = rng.randint(0, 2)
        builder.add_node(keywords=rng.sample(KEYWORD_POOL, count))
    added = False
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < 0.55:
                builder.add_edge(u, v, rng.choice(WEIGHTS), rng.choice(WEIGHTS))
                added = True
    if not added:
        builder.add_edge(0, 1, 1.0, 1.0)
    graph = builder.build()
    engine = KOREngine(graph)

    present = sorted(set(graph.keyword_table.words))
    queries = []
    for _ in range(8):
        keywords = (
            tuple(rng.sample(present, rng.randint(1, min(2, len(present)))))
            if present
            else ()
        )
        queries.append(
            KORQuery(
                rng.randrange(n),
                rng.randrange(n),
                keywords,
                rng.choice((2.0, 4.0, 6.0)),
            )
        )
    return engine, queries


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_batch_matches_sequential(seed, algorithm):
    """Cold batch == sequential loop, slot by slot, every algorithm."""
    engine, queries = random_instance(seed)
    sequential = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]

    service = QueryService(engine, cache_capacity=256)
    batch = service.run_batch(queries, algorithm=algorithm, workers=3)
    assert [fingerprint(r) for r in batch] == sequential


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("seed", (0, 1))
def test_cached_batch_matches_sequential(seed, algorithm):
    """A warm second pass (pure cache hits) is still identical."""
    engine, queries = random_instance(seed)
    sequential = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]

    service = QueryService(engine, cache_capacity=256)
    service.run_batch(queries, algorithm=algorithm, workers=3)
    warm = service.run_batch(queries, algorithm=algorithm, workers=3)
    assert [fingerprint(r) for r in warm] == sequential
    snapshot = service.snapshot()
    assert snapshot.cache_hits >= len(queries)  # whole second pass from cache


@pytest.mark.parametrize("seed", (0, 5))
def test_single_submits_match_engine(seed):
    """The one-at-a-time path agrees with the engine too, hit or miss."""
    engine, queries = random_instance(seed)
    service = QueryService(engine, cache_capacity=256)
    for algorithm in ("osscaling", "bucketbound", "greedy"):
        for query in queries:
            expected = fingerprint(engine.run(query, algorithm=algorithm))
            assert fingerprint(service.submit(query, algorithm=algorithm)) == expected
            # Repeat (cache hit) stays identical.
            assert fingerprint(service.submit(query, algorithm=algorithm)) == expected


def test_reordered_keywords_hit_but_stay_correct():
    """A canonicalization hit serves a result valid for the reordered query."""
    engine, _ = random_instance(9)
    graph = engine.graph
    present = sorted(set(graph.keyword_table.words))
    if len(present) < 2:
        pytest.skip("instance drew a graph without two distinct keywords")
    forward = KORQuery(0, graph.num_nodes - 1, tuple(present[:2]), 6.0)
    backward = KORQuery(0, graph.num_nodes - 1, tuple(reversed(present[:2])), 6.0)

    service = QueryService(engine, cache_capacity=64)
    first = service.submit(forward, algorithm="bucketbound")
    second = service.submit(backward, algorithm="bucketbound")
    assert second is first  # same canonical key, same cached object
    direct = engine.run(backward, algorithm="bucketbound")
    # Keyword *sets* are what KOR optimises over: scores must agree.
    assert second.feasible == direct.feasible
    assert second.objective_score == pytest.approx(direct.objective_score)
    assert second.budget_score == pytest.approx(direct.budget_score)
    if second.feasible:
        assert second.route.covers(graph, backward.keywords)
