"""Regression tests: a rebuilt engine must never serve stale routes.

PR 1's cache keys describe only (query, algorithm, params) — nothing
about the graph that answered them.  These tests pin the fix: the cache
carries an epoch, ``invalidate()`` bumps it, services expose
``replace_engine`` / ``invalidate_cache``, and writes that captured a
superseded epoch are dropped instead of poisoning the new one.
"""

from __future__ import annotations

import pytest

from repro.core.engine import KOREngine
from repro.core.query import KORQuery
from repro.graph.builder import GraphBuilder
from repro.service import QueryService, ResultCache, ShardedQueryService

from tests.service.test_cache_properties import make_result


def line_graph(objective: float):
    """0 -> 1 -> 2, keyword 'pub' on node 1, tunable objective weights."""
    builder = GraphBuilder()
    builder.add_node()
    builder.add_node(keywords=["pub"])
    builder.add_node()
    builder.add_edge(0, 1, objective, 1.0)
    builder.add_edge(1, 2, objective, 1.0)
    return builder.build()


QUERY = KORQuery(0, 2, ("pub",), 8.0)


class TestResultCacheEpoch:
    def test_invalidate_empties_and_bumps_epoch(self):
        cache = ResultCache(8)
        cache.put("k", make_result(3))
        first_epoch = cache.epoch
        assert len(cache) == 1
        new_epoch = cache.invalidate()
        assert new_epoch == first_epoch + 1 == cache.epoch
        assert len(cache) == 0
        assert cache.total_route_nodes == 0
        assert cache.stats.invalidations == 1

    def test_stale_write_is_dropped(self):
        """A computation that started before invalidate() cannot land."""
        cache = ResultCache(8)
        epoch = cache.epoch  # captured before the "long computation"
        cache.invalidate()  # engine swapped mid-flight
        cache.put("k", make_result(3), epoch=epoch)
        assert "k" not in cache
        assert cache.stats.stale_writes == 1

    def test_stale_probe_is_a_miss(self):
        cache = ResultCache(8)
        cache.put("k", make_result(3))
        stale_epoch = cache.epoch - 1
        assert cache.get("k", epoch=stale_epoch) is None
        assert cache.get("k", epoch=cache.epoch) is not None

    def test_current_epoch_writes_land_normally(self):
        cache = ResultCache(8)
        cache.put("k", make_result(3), epoch=cache.epoch)
        assert "k" in cache


class TestServiceInvalidation:
    def test_replace_engine_stops_serving_stale_routes(self):
        """The original bug: same query, rebuilt graph, cached answer."""
        service = QueryService(KOREngine(line_graph(1.0)), cache_capacity=64)
        before = service.submit(QUERY, algorithm="bucketbound")
        assert before.objective_score == pytest.approx(2.0)
        # Same query again: served from cache (same object).
        assert service.submit(QUERY, algorithm="bucketbound") is before

        service.replace_engine(KOREngine(line_graph(5.0)))
        after = service.submit(QUERY, algorithm="bucketbound")
        assert after is not before
        assert after.objective_score == pytest.approx(10.0)

    def test_invalidate_cache_forces_recompute(self):
        service = QueryService(KOREngine(line_graph(1.0)), cache_capacity=64)
        first = service.submit(QUERY, algorithm="bucketbound")
        service.invalidate_cache()
        second = service.submit(QUERY, algorithm="bucketbound")
        assert second is not first  # recomputed, not replayed
        assert second.objective_score == pytest.approx(first.objective_score)

    def test_batch_path_respects_invalidation(self):
        service = QueryService(KOREngine(line_graph(1.0)), cache_capacity=64)
        service.run_batch([QUERY], algorithm="bucketbound")
        service.replace_engine(KOREngine(line_graph(5.0)))
        results = service.run_batch([QUERY], algorithm="bucketbound")
        assert results[0].objective_score == pytest.approx(10.0)
        assert service.cache.stats.invalidations == 1

    def test_sharded_service_invalidate_cache(self, service_backend):
        service = ShardedQueryService(
            line_graph(1.0), num_cells=1, backend=service_backend, cache_capacity=64
        )
        first = service.submit(QUERY, algorithm="bucketbound")
        assert service.submit(QUERY, algorithm="bucketbound") is first
        service.invalidate_cache()
        recomputed = service.submit(QUERY, algorithm="bucketbound")
        assert recomputed is not first
        assert recomputed.objective_score == pytest.approx(first.objective_score)
