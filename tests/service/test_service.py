"""Unit tests of the serving layer's parts: cache, stats, service API."""

from __future__ import annotations

import pytest

from repro.core.query import KORQuery
from repro.core.results import SearchTrace
from repro.exceptions import QueryError
from repro.service import QueryService, ResultCache, canonical_cache_key
from repro.service.stats import ServiceStats, percentile


def key_for(source=0, target=1, words=("pub",), delta=4.0, algorithm="bucketbound"):
    return canonical_cache_key(KORQuery(source, target, words, delta), algorithm)


class TestResultCache:
    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        k1, k2, k3 = key_for(0, 1), key_for(0, 2), key_for(0, 3)
        cache.put(k1, "r1")
        cache.put(k2, "r2")
        cache.get(k1)  # refresh k1: k2 becomes the LRU entry
        cache.put(k3, "r3")
        assert k1 in cache and k3 in cache and k2 not in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(capacity=0)
        cache.put(key_for(), "r")
        assert len(cache) == 0
        assert cache.get(key_for()) is None
        assert cache.stats.misses == 1

    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        assert cache.stats.hit_rate == 0.0
        cache.put(key_for(), "r")
        cache.get(key_for())
        cache.get(key_for(0, 9))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_negative_capacity_rejected(self):
        with pytest.raises(QueryError):
            ResultCache(capacity=-1)


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([3.0], 95.0) == 3.0

    def test_interpolation_matches_numpy(self):
        import numpy as np

        samples = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 7.0]
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert percentile(samples, q) == pytest.approx(np.percentile(samples, q))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 120.0)


class TestServiceStats:
    def test_snapshot_aggregates(self):
        stats = ServiceStats()
        for latency in (0.010, 0.020, 0.030, 0.040):
            stats.record_query(latency, cached=False)
        stats.record_query(0.000_1, cached=True)
        stats.record_error()
        stats.record_busy(0.2)
        snapshot = stats.snapshot()
        assert snapshot.queries == 5
        assert snapshot.errors == 1
        assert snapshot.cache_hits == 1 and snapshot.cache_misses == 4
        assert snapshot.hit_rate == pytest.approx(0.2)
        assert snapshot.throughput_qps == pytest.approx(25.0)
        assert snapshot.p50_latency_seconds == pytest.approx(0.020)
        assert "p50" in snapshot.describe()

    def test_reset(self):
        stats = ServiceStats()
        stats.record_query(0.5, cached=False)
        stats.reset()
        assert stats.snapshot().queries == 0

    def test_latency_window_is_bounded_but_counters_are_lifetime(self):
        stats = ServiceStats(window=4)
        for i in range(10):
            stats.record_query(float(i), cached=False)
        snapshot = stats.snapshot()
        assert snapshot.queries == 10  # lifetime count survives the window
        # Percentiles only see the 4 most recent samples (6..9).
        assert snapshot.p50_latency_seconds == pytest.approx(7.5)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ServiceStats(window=0)


class TestQueryService:
    def test_query_convenience_matches_engine_query(self, fig1_service):
        result = fig1_service.query(0, 7, ["t1", "t2", "t3"], 8.0, algorithm="osscaling")
        assert result.feasible
        assert tuple(result.route.nodes) == (0, 3, 4, 7)

    def test_unknown_algorithm_rejected_up_front(self, fig1_service):
        query = KORQuery(0, 7, ("t1",), 8.0)
        with pytest.raises(QueryError):
            fig1_service.submit(query, algorithm="quantum")
        with pytest.raises(QueryError):
            fig1_service.execute([query], algorithm="quantum")

    def test_trace_param_bypasses_cache(self, fig1_engine):
        service = QueryService(fig1_engine, cache_capacity=16)
        query = KORQuery(0, 7, ("t1", "t2"), 8.0)
        trace_a, trace_b = SearchTrace(), SearchTrace()
        service.submit(query, algorithm="osscaling", trace=trace_a)
        service.submit(query, algorithm="osscaling", trace=trace_b)
        assert len(service.cache) == 0  # never stored
        assert trace_a.events and trace_b.events  # both calls really ran

    def test_submit_records_error_and_reraises(self, fig1_engine):
        service = QueryService(fig1_engine, cache_capacity=16)
        bad = KORQuery(500, 7, ("t1",), 8.0)
        with pytest.raises(QueryError):
            service.submit(bad, algorithm="bucketbound")
        assert service.snapshot().errors == 1

    def test_from_graph_builds_engine(self, fig1_graph):
        service = QueryService.from_graph(fig1_graph, cache_capacity=8)
        assert service.engine.graph is fig1_graph
        assert service.cache.capacity == 8

    def test_default_workers_validated(self, fig1_engine):
        with pytest.raises(QueryError):
            QueryService(fig1_engine, default_workers=0)

    def test_empty_batch(self, fig1_service):
        report = fig1_service.execute([], algorithm="bucketbound")
        assert report.items == [] and report.ok
        assert fig1_service.run_batch([]) == []

    def test_batch_rejects_per_query_params(self, fig1_engine, fig1_service):
        query = KORQuery(0, 7, ("t1",), 8.0)
        binding = fig1_engine.bind(query)
        with pytest.raises(QueryError, match="per-query"):
            fig1_service.execute([query], binding=binding)
        with pytest.raises(QueryError, match="per-query"):
            fig1_service.run_batch([query], candidates={})


class TestPercentileAgainstNumpy:
    """Property: ``percentile`` is ``numpy.percentile`` (linear method)."""

    @staticmethod
    def _np():
        import numpy as np

        return np

    def test_q0_is_min_and_q100_is_max(self):
        samples = [9.0, 2.0, 5.0, 7.0]
        assert percentile(samples, 0.0) == 2.0
        assert percentile(samples, 100.0) == 9.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert percentile([4.2], q) == 4.2

    def test_two_samples_interpolate_linearly(self):
        np = self._np()
        for q in (0.0, 10.0, 25.0, 50.0, 75.0, 99.0, 100.0):
            assert percentile([1.0, 3.0], q) == pytest.approx(
                np.percentile([1.0, 3.0], q)
            )
        assert percentile([1.0, 3.0], 50.0) == pytest.approx(2.0)

    def test_property_matches_numpy(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        np = self._np()

        @settings(max_examples=150, deadline=None)
        @given(
            samples=st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=1,
                max_size=50,
            ),
            q=st.one_of(
                st.sampled_from([0.0, 50.0, 95.0, 99.0, 100.0]),
                st.floats(min_value=0.0, max_value=100.0),
            ),
        )
        def check(samples, q):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q)), rel=1e-9, abs=1e-9
            )

        check()


class TestSLOAndEndpointAccounting:
    def test_p99_tracks_the_latency_window(self):
        stats = ServiceStats()
        samples = [i / 1000.0 for i in range(100)]
        for latency in samples:
            stats.record_query(latency, cached=False)
        snapshot = stats.snapshot()
        assert snapshot.p99_latency_seconds == pytest.approx(
            percentile(samples, 99.0)
        )
        assert snapshot.p99_latency_seconds >= snapshot.p95_latency_seconds
        assert "p99" in snapshot.describe()

    def test_slo_violations_counted_and_budgeted(self):
        stats = ServiceStats(slo_seconds=0.05)
        stats.record_query(0.010, cached=False)
        stats.record_query(0.100, cached=False)  # violation
        stats.record_query(0.060, cached=True)  # violation (hits count too)
        snapshot = stats.snapshot()
        assert snapshot.slo_seconds == 0.05
        assert snapshot.slo_violations == 2
        assert snapshot.slo_violation_rate == pytest.approx(2.0 / 3.0)
        # 66.7% violations against a 100% budget: 2/3 of budget spent.
        assert snapshot.slo_budget_used(budget_fraction=1.0) == pytest.approx(2.0 / 3.0)
        assert "SLO" in snapshot.describe()

    def test_no_slo_means_no_violation_accounting(self):
        stats = ServiceStats()
        stats.record_query(10.0, cached=False)
        snapshot = stats.snapshot()
        assert snapshot.slo_seconds is None
        assert snapshot.slo_violations == 0
        assert "SLO" not in snapshot.describe()

    def test_guards(self):
        with pytest.raises(ValueError, match="slo_seconds"):
            ServiceStats(slo_seconds=0.0)
        snapshot = ServiceStats().snapshot()
        assert snapshot.slo_violation_rate == 0.0  # idle: no division
        with pytest.raises(ValueError, match="budget_fraction"):
            snapshot.slo_budget_used(budget_fraction=0.0)

    def test_endpoint_counters(self):
        stats = ServiceStats()
        stats.record_endpoint("/query")
        stats.record_endpoint("/query", error=True)
        stats.record_endpoint("/healthz")
        snapshot = stats.snapshot()
        assert snapshot.endpoints == {
            "/query": {"requests": 2, "errors": 1},
            "/healthz": {"requests": 1, "errors": 0},
        }
        # The snapshot holds a copy, not the live dict.
        stats.record_endpoint("/query")
        assert snapshot.endpoints["/query"]["requests"] == 2

    def test_reset_clears_slo_and_endpoint_state(self):
        stats = ServiceStats(slo_seconds=0.01)
        stats.record_query(1.0, cached=False)
        stats.record_endpoint("/query", error=True)
        stats.reset()
        snapshot = stats.snapshot()
        assert snapshot.slo_violations == 0
        assert snapshot.endpoints == {}
        assert snapshot.slo_seconds == 0.01  # the SLO itself survives reset
