"""Failure containment at the service tiers.

Three contracts the front door depends on:

* **Deadlines are out-of-band** — ``deadline=`` reaches the engine but
  never the cache key or the query params, an expired deadline caches
  nothing, and smuggling one through ``params`` is rejected at every
  tier.
* **ServiceClosed is distinct** — closing an ``AsyncQueryService`` fails
  queued-but-undispatched flights with
  :class:`~repro.exceptions.ServiceClosed`, never a bare cancellation,
  and later submissions are refused with the same error.
* **Degradation is explicit** — a sharded wave whose cross-cell attempt
  died returns the feasible cell answer flagged ``degraded=True``; a
  completed cross attempt is authoritative and never degrades; the flag
  survives the wire schema round-trip without disturbing v1 payloads.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.deadline import Deadline
from repro.core.engine import ALGORITHMS
from repro.exceptions import DeadlineExceeded, ServiceClosed
from repro.server.schema import (
    decode_route_result,
    encode_route_result,
    validate_route_result,
)
from repro.service import AsyncQueryService, QueryService, ShardedQueryService
from repro.service.faults import FaultPlan, FaultRule, injected

from tests.service.test_differential import fingerprint, random_instance

pytestmark = pytest.mark.timeout(120)


def expired_deadline() -> Deadline:
    return Deadline(time.monotonic() - 1.0, tick_stride=1)


class TestServiceDeadline:
    def test_deadline_is_not_a_query_parameter(self):
        from repro.service.batch import execute_batch
        from repro.service.cache import ResultCache

        engine, queries = random_instance(0)
        with pytest.raises(Exception, match="not a query parameter"):
            execute_batch(
                engine,
                ResultCache(8),
                queries[:1],
                params={"deadline": Deadline.after(60.0)},
            )

    def test_deadline_is_rejected_on_the_wire(self):
        from repro.server.schema import parse_route_query

        with pytest.raises(Exception, match="deadline"):
            parse_route_query(
                {
                    "source": 0,
                    "target": 1,
                    "keywords": [],
                    "budget_limit": 2.0,
                    "params": {"deadline": 50},
                }
            )

    def test_expired_deadline_raises_and_caches_nothing(self):
        engine, queries = random_instance(1)
        service = QueryService(engine, cache_capacity=64)
        with pytest.raises(DeadlineExceeded):
            service.submit(queries[0], deadline=expired_deadline())
        assert len(service.cache) == 0

    def test_deadline_never_enters_the_cache_key(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=64)
        query = queries[0]
        expected = fingerprint(service.submit(query))
        assert len(service.cache) == 1
        # A deadline-carrying repeat is the same cache entry: it hits
        # (no recompute) and plants no second entry.
        bounded = service.submit(query, deadline=Deadline.after(60.0))
        assert fingerprint(bounded) == expected
        assert len(service.cache) == 1
        assert service.snapshot().cache_hits >= 1

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_batch_deadline_is_semantically_invisible(self, algorithm):
        engine, queries = random_instance(3)
        expected = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]
        service = QueryService(engine, cache_capacity=0)
        batch = service.run_batch(
            queries, algorithm=algorithm, deadline=Deadline.after(3600.0)
        )
        assert [fingerprint(r) for r in batch] == expected

    def test_sharded_batch_respects_expired_deadline(self):
        engine, queries = random_instance(4)
        service = ShardedQueryService(engine.graph, num_cells=2, seed=4)
        report = service.execute(queries, deadline=expired_deadline())
        assert not report.ok
        assert all(
            isinstance(error, DeadlineExceeded) for error in report.errors.values()
        )


class TestServiceClosed:
    def test_close_fails_undispatched_flights_with_service_closed(self):
        engine, queries = random_instance(0)
        service = QueryService(engine, cache_capacity=0)

        async def drive():
            # A wide window guarantees the flight is still queued when
            # close() runs — nothing has been dispatched yet.
            front = AsyncQueryService(service, window_seconds=30.0)
            task = asyncio.create_task(front.submit(queries[0]))
            await asyncio.sleep(0.02)
            await front.close()
            with pytest.raises(ServiceClosed, match="before this query dispatched"):
                await task
            assert not task.cancelled()

        asyncio.run(drive())

    def test_submit_after_close_is_refused(self):
        engine, queries = random_instance(0)

        async def drive():
            front = AsyncQueryService(QueryService(engine, cache_capacity=0))
            await front.close()
            with pytest.raises(ServiceClosed):
                await front.submit(queries[0])

        asyncio.run(drive())


def _cross_killer(service: ShardedQueryService) -> FaultPlan:
    """A plan failing every cross-cell attempt of *service*, nothing else."""
    return FaultPlan(
        [FaultRule(kind="error_task", shard="crosscell", times=10_000)]
    )


def _cell_local_instance():
    """A graph + query whose cell-local attempt is always feasible.

    Every node carries the keyword and all edges cost 1, so whatever the
    partition looks like, a query between two nodes of the same cell is
    answerable inside that cell.
    """
    from repro.core.query import KORQuery
    from repro.graph.builder import GraphBuilder

    builder = GraphBuilder()
    for _ in range(6):
        builder.add_node(keywords=["pub"])
    for u in range(6):
        for v in range(6):
            if u != v:
                builder.add_edge(u, v, 1.0, 1.0)
    graph = builder.build()
    service = ShardedQueryService(graph, num_cells=2, seed=4)
    shard = next(s for s in service.shards if len(s.to_global) >= 2)
    query = KORQuery(
        int(shard.to_global[0]), int(shard.to_global[1]), ("pub",), 10.0
    )
    return service, query


class TestGracefulDegradation:
    def test_cross_cell_death_degrades_instead_of_failing(self):
        service, query = _cell_local_instance()

        with injected(_cross_killer(service)) as plan:
            report = service.execute([query])
        assert plan.fired(), "the cross-cell fault never fired"

        assert report.ok
        result = report.items[0].result
        # A degraded answer is genuinely feasible — a subgraph route is
        # a full-graph route — it just lost its global-optimality
        # certificate.
        assert result.degraded
        assert result.feasible
        assert result.covers_keywords
        assert result.within_budget
        assert service.snapshot().merge_wins.get("degraded", 0) == 1

    def test_cross_cell_death_without_cell_answer_is_an_error(self):
        service, query = _cell_local_instance()
        with injected(
            FaultPlan([FaultRule(kind="error_task", times=10_000)])
        ):
            report = service.execute([query])
        assert not report.ok
        assert not any(
            item.result is not None and item.result.degraded for item in report.items
        )

    def test_completed_cross_attempt_never_degrades(self):
        engine, queries = random_instance(1)
        service = ShardedQueryService(engine.graph, num_cells=2, seed=4)
        results = service.run_batch(queries)
        assert all(not result.degraded for result in results)
        assert "degraded" not in service.snapshot().merge_wins

    def test_single_cell_service_never_degrades(self):
        engine, queries = random_instance(1)
        service = ShardedQueryService(engine.graph, num_cells=1, seed=4)
        with injected(_cross_killer(service)):
            report = service.execute(queries)
        assert report.ok
        assert all(not item.result.degraded for item in report.items)


class TestDegradedOnTheWire:
    def test_normal_payloads_are_unchanged(self):
        engine, queries = random_instance(2)
        result = engine.run(queries[0])
        payload = encode_route_result(result)
        assert "degraded" not in payload
        validate_route_result(payload)
        assert decode_route_result(payload).degraded is False

    def test_degraded_flag_round_trips(self):
        from dataclasses import replace

        engine, queries = random_instance(2)
        result = replace(engine.run(queries[0]), degraded=True)
        payload = encode_route_result(result)
        assert payload["degraded"] is True
        validate_route_result(payload)
        assert decode_route_result(payload).degraded is True

    def test_degraded_must_be_boolean(self):
        engine, queries = random_instance(2)
        payload = encode_route_result(engine.run(queries[0]))
        payload["degraded"] = "yes"
        with pytest.raises(Exception, match="boolean"):
            validate_route_result(payload)
