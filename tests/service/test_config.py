"""The unified construction API: ``ServiceConfig`` + ``build_service``.

Satellite (a) of the dynamic-world issue: one factory replaces the
constructor-kwarg sprawl across the three tiers.  The contracts under
test — tier selection from the world's type, string-backend resolution
with lifecycle ownership, override validation, and equivalence with the
old constructors (which stay supported).
"""

from __future__ import annotations

import pytest

from repro.core.engine import KOREngine
from repro.exceptions import QueryError
from repro.service import (
    AsyncQueryService,
    QueryService,
    ServiceConfig,
    ShardedQueryService,
    ThreadBackend,
    build_service,
)
from repro.world import MutableWorld

from tests.service.test_differential import fingerprint, random_instance


@pytest.fixture
def graph():
    engine, _queries = random_instance(0)
    return engine.graph


class TestServiceConfig:
    def test_defaults_mirror_the_constructors(self):
        config = ServiceConfig()
        assert config.tier == "auto"
        assert config.backend is None
        assert config.cache_capacity == 1024

    def test_unknown_tier_is_rejected(self):
        with pytest.raises(QueryError, match="unknown service tier"):
            ServiceConfig(tier="galactic")

    def test_bad_worker_count_is_rejected(self):
        with pytest.raises(QueryError, match="workers"):
            ServiceConfig(workers=0)

    def test_with_overrides_rejects_unknown_fields(self):
        config = ServiceConfig()
        assert config.with_overrides(workers=3).workers == 3
        with pytest.raises(QueryError, match="unknown ServiceConfig field"):
            config.with_overrides(wrokers=3)


class TestTierSelection:
    def test_bare_graph_defaults_to_flat(self, graph):
        service = build_service(graph)
        assert type(service) is QueryService

    def test_mutable_world_defaults_to_sharded(self, graph):
        world = MutableWorld(graph, num_cells=2)
        service = build_service(world)
        assert type(service) is ShardedQueryService
        assert service.world is world

    def test_num_cells_promotes_a_graph_to_sharded(self, graph):
        service = build_service(graph, num_cells=2)
        assert type(service) is ShardedQueryService

    def test_explicit_flat_wins_over_world(self, graph):
        world = MutableWorld(graph, num_cells=2)
        service = build_service(world, tier="flat")
        assert type(service) is QueryService
        assert service.engine.graph is world.graph

    def test_engine_is_reused_by_the_flat_tier(self, graph):
        engine = KOREngine(graph)
        service = build_service(engine)
        assert service.engine is engine

    def test_async_tier_wraps_the_auto_selected_sync_tier(self, graph):
        front = build_service(graph, tier="async")
        assert type(front) is AsyncQueryService
        assert type(front.service) is QueryService
        front_sharded = build_service(MutableWorld(graph, num_cells=2), tier="async")
        assert type(front_sharded.service) is ShardedQueryService


class TestBackendOwnership:
    def test_string_backend_is_owned_and_closed(self, graph):
        service = build_service(graph, backend="thread", workers=2)
        backend = service.backend
        assert isinstance(backend, ThreadBackend)
        service.run_batch([], algorithm="exact")  # force the pool alive
        backend.submit_call(lambda: None).result()
        assert backend._executor is not None
        service.close()
        # Closing a factory-owned backend shuts its pool down.
        assert backend._executor is None

    def test_backend_instance_is_shared_and_left_open(self, graph):
        backend = ThreadBackend(workers=2)
        try:
            backend.submit_call(lambda: None).result()
            service = build_service(graph, backend=backend)
            assert service.backend is backend
            service.close()
            # A caller-supplied backend is never closed by the service.
            assert backend._executor is not None
        finally:
            backend.close()


class TestFactoryEquivalence:
    def test_factory_flat_equals_constructor_flat(self, graph):
        engine, queries = random_instance(0)
        old_style = QueryService(KOREngine(graph), cache_capacity=256)
        new_style = build_service(graph, cache_capacity=256)
        for algorithm in ("bucketbound", "exact"):
            lhs = old_style.run_batch(queries, algorithm=algorithm)
            rhs = new_style.run_batch(queries, algorithm=algorithm)
            assert [fingerprint(r) for r in lhs] == [fingerprint(r) for r in rhs]

    def test_factory_sharded_equals_constructor_sharded(self, graph):
        _engine, queries = random_instance(0)
        old_style = ShardedQueryService(graph, num_cells=2, seed=0)
        new_style = build_service(graph, num_cells=2, seed=0)
        try:
            for algorithm in ("bucketbound", "exact"):
                lhs = old_style.run_batch(queries, algorithm=algorithm)
                rhs = new_style.run_batch(queries, algorithm=algorithm)
                assert [fingerprint(r) for r in lhs] == [
                    fingerprint(r) for r in rhs
                ]
        finally:
            old_style.close()
            new_style.close()

    def test_factory_built_service_supports_mutation(self, graph):
        service = build_service(MutableWorld(graph, num_cells=2))
        try:
            epoch = service.update_edge_cost(
                *next(
                    (u, v)
                    for u in range(graph.num_nodes)
                    for v, _o, _b in graph.out_edges(u)
                ),
                objective=2.5,
            )
            assert epoch == service.epoch == 1
        finally:
            service.close()
