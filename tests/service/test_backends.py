"""Execution-backend contract tests.

The backend is an implementation detail: the same query batch must come
back **byte-identical** from ``SerialBackend``, ``ThreadBackend`` and
``ProcessBackend`` — through the flat ``QueryService`` and the
``ShardedQueryService`` alike — and one poisoned slot must never sink
its batch, whichever backend executed it.
"""

from __future__ import annotations

import pytest

from repro.core.query import KORQuery
from repro.exceptions import QueryError
from repro.service import (
    EngineHandle,
    ProcessBackend,
    QueryService,
    SerialBackend,
    ShardTask,
    ShardedQueryService,
    ThreadBackend,
    backend_from_name,
)

from tests.service.test_concurrency import result_bytes
from tests.service.test_differential import random_instance

BACKEND_FACTORIES = (
    ("serial", lambda: SerialBackend()),
    ("thread", lambda: ThreadBackend(workers=3)),
    ("process", lambda: ProcessBackend(workers=2)),
)


def run_on_every_backend(run):
    """Map a callback over fresh instances of all three backends."""
    outputs = {}
    for name, factory in BACKEND_FACTORIES:
        backend = factory()
        try:
            outputs[name] = run(backend)
        finally:
            backend.close()
    return outputs


class TestBackendEquivalence:
    @pytest.mark.parametrize("algorithm", ("bucketbound", "greedy2"))
    @pytest.mark.parametrize("seed", (0, 2))
    def test_flat_service_byte_identical_across_backends(self, seed, algorithm):
        engine, queries = random_instance(seed)

        def run(backend):
            service = QueryService(engine, cache_capacity=256, backend=backend)
            return result_bytes(service.run_batch(queries, algorithm=algorithm))

        outputs = run_on_every_backend(run)
        assert outputs["serial"] == outputs["thread"] == outputs["process"]

    @pytest.mark.parametrize("num_cells", (1, 2))
    def test_sharded_service_byte_identical_across_backends(self, num_cells):
        engine, queries = random_instance(1)
        cells = min(num_cells, engine.graph.num_nodes)

        def run(backend):
            service = ShardedQueryService(
                engine.graph, num_cells=cells, seed=4, backend=backend
            )
            return result_bytes(service.run_batch(queries, algorithm="osscaling"))

        outputs = run_on_every_backend(run)
        assert outputs["serial"] == outputs["thread"] == outputs["process"]

    def test_uncached_batches_stay_identical(self):
        """cache_capacity=0 forces every backend down the compute path."""
        engine, queries = random_instance(6)

        def run(backend):
            service = QueryService(engine, cache_capacity=0, backend=backend)
            return result_bytes(service.run_batch(queries, algorithm="bucketbound"))

        outputs = run_on_every_backend(run)
        assert outputs["serial"] == outputs["thread"] == outputs["process"]


class TestFailureInjection:
    def poisoned_batch(self, engine, queries):
        bad = KORQuery(engine.graph.num_nodes + 7, 0, (), 4.0)  # out of range
        return [queries[0], bad, queries[1]], 1

    @pytest.mark.parametrize("name", [name for name, _ in BACKEND_FACTORIES])
    def test_one_poisoned_slot_never_sinks_the_batch_flat(self, name):
        engine, queries = random_instance(2)
        backend = dict(BACKEND_FACTORIES)[name]()
        try:
            service = QueryService(engine, cache_capacity=256, backend=backend)
            batch, bad_slot = self.poisoned_batch(engine, queries)
            report = service.execute(batch, algorithm="bucketbound")
            assert set(report.errors) == {bad_slot}
            assert isinstance(report.errors[bad_slot], QueryError)
            for item in report.items:
                if item.index != bad_slot:
                    assert item.ok
            # Nothing about the poisoned slot entered the cache.
            assert len(service.cache) == len(batch) - 1
        finally:
            backend.close()

    @pytest.mark.parametrize("name", [name for name, _ in BACKEND_FACTORIES])
    def test_one_poisoned_slot_never_sinks_the_batch_sharded(self, name):
        engine, queries = random_instance(2)
        backend = dict(BACKEND_FACTORIES)[name]()
        try:
            service = ShardedQueryService(
                engine.graph,
                num_cells=min(2, engine.graph.num_nodes),
                backend=backend,
            )
            batch, bad_slot = self.poisoned_batch(engine, queries)
            report = service.execute(batch, algorithm="bucketbound")
            assert set(report.errors) == {bad_slot}
            assert isinstance(report.errors[bad_slot], QueryError)
            for item in report.items:
                if item.index != bad_slot:
                    assert item.ok
            snapshot = service.snapshot()
            assert snapshot.errors == 1
            assert sum(snapshot.shard_errors.values()) == 1
        finally:
            backend.close()


class TestOutOfProcessParamGuards:
    def test_trace_rejected_on_process_backend_flat(self):
        """A trace sink cannot cross the process boundary: refuse loudly
        instead of silently returning an empty trace."""
        from repro.core.results import SearchTrace

        engine, queries = random_instance(0)
        backend = ProcessBackend(workers=1)
        try:
            service = QueryService(engine, cache_capacity=0, backend=backend)
            with pytest.raises(QueryError, match="trace"):
                service.run_batch(queries[:2], algorithm="bucketbound", trace=SearchTrace())
        finally:
            backend.close()

    @pytest.mark.parametrize("name", [name for name, _ in BACKEND_FACTORIES])
    def test_trace_rejected_on_sharded_service_every_backend(self, name):
        """Sharded traces would carry cell-local node ids: always refused."""
        from repro.core.results import SearchTrace

        engine, queries = random_instance(0)
        backend = dict(BACKEND_FACTORIES)[name]()
        try:
            service = ShardedQueryService(engine.graph, num_cells=1, backend=backend)
            with pytest.raises(QueryError, match="trace"):
                service.execute(queries[:2], algorithm="bucketbound", trace=SearchTrace())
        finally:
            backend.close()

    def test_trace_still_fills_on_in_process_backends(self):
        from repro.core.results import SearchTrace

        engine, queries = random_instance(0)
        backend = ThreadBackend(workers=2)
        try:
            service = QueryService(engine, cache_capacity=0, backend=backend)
            trace = SearchTrace()
            service.run_batch(queries[:1], algorithm="osscaling", trace=trace)
            assert trace.events
        finally:
            backend.close()


class TestRegistryHygiene:
    def test_replace_engine_unregisters_the_old_handle(self):
        engine_a, queries = random_instance(0)
        engine_b, _ = random_instance(7)
        backend = SerialBackend()
        service = QueryService(engine_a, backend=backend)
        assert len(backend.shard_keys) == 1
        for replacement in (engine_b, engine_a):
            service.replace_engine(replacement)
            assert backend.shard_keys == (service._handle.key,)
        assert service.run_batch(queries[:2], algorithm="bucketbound")

    def test_sharded_close_unregisters_from_shared_backend(self):
        """Retired services must not pin their engines in a shared backend."""
        engine, queries = random_instance(0)
        backend = SerialBackend()
        first = ShardedQueryService(engine.graph, num_cells=2, backend=backend)
        assert len(backend.shard_keys) == first.num_shards + 1
        first.close()
        assert backend.shard_keys == ()
        # The shared backend is still usable by a successor service.
        second = ShardedQueryService(engine.graph, num_cells=2, backend=backend)
        assert second.run_batch(queries[:2], algorithm="bucketbound")
        second.close()

    def test_unregister_unknown_key_is_a_noop(self):
        backend = SerialBackend()
        backend.unregister("never-registered")
        assert backend.shard_keys == ()

    def test_flat_service_keeps_shard_counters_empty(self):
        """Per-shard counters are a sharded-service feature (see
        StatsSnapshot docs)."""
        engine, queries = random_instance(0)
        service = QueryService(engine, cache_capacity=0)
        service.run_batch(queries, algorithm="bucketbound")
        snapshot = service.snapshot()
        assert snapshot.shard_tasks == {}
        assert snapshot.shard_errors == {}


class TestProcessBackendMechanics:
    def test_closures_are_rejected(self):
        backend = ProcessBackend(workers=1)
        with pytest.raises(QueryError):
            backend.map(lambda unit: unit, [1, 2, 3])
        backend.close()

    def test_unknown_shard_fails_only_its_own_task(self):
        engine, queries = random_instance(0)
        backend = ProcessBackend(workers=1)
        try:
            handle = backend.register_engine(engine)
            good = ShardTask.build(handle.key, queries[0], "bucketbound", {})
            ghost = ShardTask.build("no-such-shard", queries[1], "bucketbound", {})
            outcomes = backend.run_tasks([good, ghost, good])
            assert outcomes[0].ok and outcomes[2].ok
            assert not outcomes[1].ok
            assert isinstance(outcomes[1].error, QueryError)
        finally:
            backend.close()

    def test_registering_after_a_run_retires_and_rebuilds_the_pool(self):
        engine_a, queries_a = random_instance(0)
        engine_b, queries_b = random_instance(7)
        backend = ProcessBackend(workers=1)
        try:
            handle_a = backend.register_engine(engine_a)
            first = backend.run_tasks(
                [ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {})]
            )
            assert first[0].ok
            handle_b = backend.register_engine(engine_b)
            second = backend.run_tasks(
                [
                    ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {}),
                    ShardTask.build(handle_b.key, queries_b[0], "bucketbound", {}),
                ]
            )
            assert second[0].ok and second[1].ok
        finally:
            backend.close()

    def test_close_is_idempotent_and_warm_up_spins_the_pool(self):
        engine, queries = random_instance(0)
        backend = ProcessBackend(workers=2)
        handle = backend.register_engine(engine)
        backend.warm_up()
        outcomes = backend.run_tasks(
            [ShardTask.build(handle.key, queries[0], "bucketbound", {})]
        )
        assert outcomes[0].ok
        backend.close()
        backend.close()

    def test_engine_handle_round_trip_serves_queries(self):
        import pickle

        engine, queries = random_instance(3)
        handle = EngineHandle(engine, key="round-trip")
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.key == "round-trip"
        expected = engine.run(queries[0], algorithm="bucketbound")
        got = clone.engine().run(queries[0], algorithm="bucketbound")
        assert got.objective_score == expected.objective_score
        assert got.budget_score == expected.budget_score


def test_backend_from_name_matrix():
    for name, expected in (("serial", SerialBackend), ("thread", ThreadBackend), ("process", ProcessBackend)):
        backend = backend_from_name(name)
        assert isinstance(backend, expected)
        backend.close()
    with pytest.raises(QueryError):
        backend_from_name("gpu")
