"""Differential testing: BorderEngine vs flat KOREngine.

The cross-cell tier's contract is *flat-engine semantics from partitioned
state*: border-table assembly is exact (see
:mod:`repro.prep.partition`), so a :class:`BorderEngine` must

* agree with the flat engine on **feasibility** for every algorithm
  (its pruning columns are mathematically identical);
* return routes that are **sound** on the full graph with scores that
  match the route's actual edge weights;
* never beat the certified optimum, and — for the ``exact`` algorithm —
  match it;
* survive the pickle round-trip :class:`EngineHandle` uses to ship it to
  process-pool workers, re-materialising as a ``BorderEngine`` (not a
  flat engine) with identical answers.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.engine import ALGORITHMS, KOREngine
from repro.prep.partition import PartitionedCostTables
from repro.service import BorderEngine, EngineHandle
from repro.service.crosscell import BorderEngine as CrosscellBorderEngine

from tests.service.test_differential import fingerprint, random_instance
from tests.service.test_sharded_differential import assert_sound


def border_engine_for(graph, num_cells, seed=0) -> BorderEngine:
    tables = PartitionedCostTables.from_graph(
        graph, num_cells=num_cells, seed=seed, predecessors=True
    )
    return BorderEngine(graph, tables=tables)


@pytest.mark.parametrize("num_cells", (1, 2, 3))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_border_engine_matches_flat_semantics(algorithm, num_cells):
    """Feasibility-identical, sound, never better than the optimum."""
    for seed in (0, 1, 2):
        engine, queries = random_instance(seed)
        graph = engine.graph
        border = border_engine_for(graph, min(num_cells, graph.num_nodes))
        for query in queries:
            flat = engine.run(query, algorithm=algorithm)
            got = border.run(query, algorithm=algorithm)
            assert got.feasible == flat.feasible, (query, algorithm)
            if got.feasible:
                assert_sound(graph, query, got)
                optimum = engine.run(query, algorithm="exact")
                assert got.objective_score >= optimum.objective_score - 1e-9
                if algorithm == "exact":
                    assert got.objective_score == pytest.approx(
                        optimum.objective_score
                    )
            else:
                assert got.failure_reason == flat.failure_reason


def test_single_cell_border_engine_is_flat_identical():
    """With one cell the assembled tables *are* the flat tables."""
    engine, queries = random_instance(4)
    border = border_engine_for(engine.graph, 1)
    for query in queries:
        for algorithm in ("bucketbound", "exact"):
            assert fingerprint(border.run(query, algorithm=algorithm)) == fingerprint(
                engine.run(query, algorithm=algorithm)
            )


def test_border_engine_rejects_flat_tables_and_scoreless_tables():
    from repro.exceptions import QueryError

    engine, _ = random_instance(0)
    with pytest.raises(QueryError):
        BorderEngine(engine.graph, tables=engine.tables)
    scoreless = PartitionedCostTables.from_graph(
        engine.graph, num_cells=2, predecessors=False
    )
    with pytest.raises(QueryError):
        BorderEngine(engine.graph, tables=scoreless)


def test_engine_handle_round_trip_preserves_border_engine():
    """A pickled handle re-materialises the cross-cell engine class."""
    engine, queries = random_instance(2)
    border = border_engine_for(engine.graph, 2)
    handle = EngineHandle(border, key="crosscell-test")
    clone = pickle.loads(pickle.dumps(handle))
    rebuilt = clone.engine()
    assert type(rebuilt) is CrosscellBorderEngine
    assert isinstance(rebuilt.tables, PartitionedCostTables)
    for query in queries:
        assert fingerprint(rebuilt.run(query, algorithm="bucketbound")) == fingerprint(
            border.run(query, algorithm="bucketbound")
        )


def test_engine_handle_round_trip_still_builds_flat_engines():
    """Plain engines keep materialising as plain engines."""
    engine, queries = random_instance(2)
    clone = pickle.loads(pickle.dumps(EngineHandle(engine, key="flat-test")))
    rebuilt = clone.engine()
    assert type(rebuilt) is KOREngine
    query = queries[0]
    assert fingerprint(rebuilt.run(query, algorithm="bucketbound")) == fingerprint(
        engine.run(query, algorithm="bucketbound")
    )


def test_border_engine_memory_is_sublinear_in_flat():
    """The partitioned tier undercuts the flat score tables it replaces."""
    from repro.graph.generators import grid_graph

    graph = grid_graph(8, 8)
    border = border_engine_for(graph, 4, seed=1)
    flat_scores = PartitionedCostTables.flat_memory_bytes(graph.num_nodes)
    assert border.tables.memory_bytes() < flat_scores
    assert border.num_border_nodes > 0
    assert border.partition.num_cells == 4
