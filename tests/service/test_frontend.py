"""AsyncQueryService: differential, coalescing, micro-batching, timeouts.

The front-end adds *scheduling*, never semantics: everything awaited
through it must be byte-identical to the sync service it wraps, on every
backend, for every algorithm.  Tests drive real event loops via
``asyncio.run`` (no pytest-asyncio dependency), so they also run under
the CI backend matrix like every other file in this directory.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.engine import ALGORITHMS
from repro.exceptions import QueryError
from repro.service import AsyncQueryService, QueryService, ShardedQueryService

from tests.service.test_backends import run_on_every_backend
from tests.service.test_concurrency import result_bytes
from tests.service.test_differential import fingerprint, random_instance


class SlowEngine:
    """Engine proxy that counts (and can delay) ``run`` calls."""

    def __init__(self, engine, delay_seconds: float = 0.0):
        self._engine = engine
        self._delay = delay_seconds
        self._lock = threading.Lock()
        self.runs = 0

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def run(self, *args, **kwargs):
        with self._lock:
            self.runs += 1
        if self._delay:
            time.sleep(self._delay)
        return self._engine.run(*args, **kwargs)


class TestAsyncDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("seed", (0, 3))
    def test_flat_async_matches_sync(self, seed, algorithm, service_backend):
        """Awaited answers == sync batch answers, all six algorithms."""
        engine, queries = random_instance(seed)
        sync_service = QueryService(engine, cache_capacity=256, backend=service_backend)
        expected = [fingerprint(engine.run(q, algorithm=algorithm)) for q in queries]

        async def drive():
            async with AsyncQueryService(sync_service) as front:
                return await front.run_batch(queries, algorithm=algorithm)

        got = asyncio.run(drive())
        assert [fingerprint(r) for r in got] == expected

    @pytest.mark.parametrize("num_cells", (1, 2))
    def test_sharded_async_matches_sync(self, num_cells, service_backend):
        engine, queries = random_instance(1)
        cells = min(num_cells, engine.graph.num_nodes)
        sharded = ShardedQueryService(
            engine.graph, num_cells=cells, seed=4, backend=service_backend
        )
        expected = result_bytes(sharded.run_batch(queries, algorithm="osscaling"))
        sharded.invalidate_cache()

        async def drive():
            async with AsyncQueryService(sharded) as front:
                return await front.run_batch(queries, algorithm="osscaling")

        assert result_bytes(asyncio.run(drive())) == expected

    def test_async_byte_identical_across_all_backends(self):
        """The full acceptance triangle: async == sync == every backend."""
        engine, queries = random_instance(5)

        def run(backend):
            service = QueryService(engine, cache_capacity=256, backend=backend)

            async def drive():
                async with AsyncQueryService(service) as front:
                    return result_bytes(
                        await front.run_batch(queries, algorithm="bucketbound")
                    )

            return asyncio.run(drive())

        outputs = run_on_every_backend(run)
        sync = result_bytes(
            QueryService(engine, cache_capacity=256).run_batch(
                queries, algorithm="bucketbound"
            )
        )
        assert outputs["serial"] == outputs["thread"] == outputs["process"] == sync


class TestCoalescing:
    def test_n_awaiters_one_execution(self):
        """Acceptance: N concurrent awaiters -> exactly one engine run."""
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.01)
        service = QueryService(slow, cache_capacity=256)
        n = 8

        async def drive():
            async with AsyncQueryService(service) as front:
                results = await asyncio.gather(
                    *(front.submit(queries[0], algorithm="bucketbound") for _ in range(n))
                )
                return front.snapshot(), front.scheduling_stats(), results

        snapshot, scheduling, results = asyncio.run(drive())
        assert slow.runs == 1
        assert snapshot.coalesced == n - 1
        assert scheduling["flights"] == 1
        assert scheduling["waves"] == 1
        assert all(r is results[0] for r in results)

    def test_distinct_queries_share_one_wave(self):
        """Micro-batching: concurrent distinct awaiters -> one execute."""
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        calls = []
        original = service.execute

        def counting_execute(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        service.execute = counting_execute

        async def drive():
            async with AsyncQueryService(service) as front:
                return await asyncio.gather(
                    *(front.submit(q, algorithm="bucketbound") for q in queries[:4])
                )

        results = asyncio.run(drive())
        assert len(calls) == 1
        assert [fingerprint(r) for r in results] == [
            fingerprint(engine.run(q, algorithm="bucketbound")) for q in queries[:4]
        ]

    def test_different_params_ride_different_waves(self):
        """One wave per (algorithm, params): semantics stay per-request."""
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)

        async def drive():
            async with AsyncQueryService(service) as front:
                a, b = await asyncio.gather(
                    front.submit(queries[0], algorithm="osscaling", epsilon=0.5),
                    front.submit(queries[0], algorithm="osscaling", epsilon=0.1),
                )
                return front.scheduling_stats(), a, b

        scheduling, a, b = asyncio.run(drive())
        assert scheduling["waves"] == 2
        assert fingerprint(a) == fingerprint(
            engine.run(queries[0], algorithm="osscaling", epsilon=0.5)
        )
        assert fingerprint(b) == fingerprint(
            engine.run(queries[0], algorithm="osscaling", epsilon=0.1)
        )

    def test_sequential_submits_reuse_sync_cache(self):
        """After a flight lands, repeats are sync-cache hits, not reruns."""
        engine, queries = random_instance(0)
        slow = SlowEngine(engine)
        service = QueryService(slow, cache_capacity=256)

        async def drive():
            async with AsyncQueryService(service) as front:
                first = await front.submit(queries[0], algorithm="bucketbound")
                second = await front.submit(queries[0], algorithm="bucketbound")
                return first, second

        first, second = asyncio.run(drive())
        assert slow.runs == 1
        assert second is first  # the cached object itself


class TestTimeoutAndCancellation:
    def test_timeout_before_dispatch_cancels_the_flight(self):
        """A flight all of whose awaiters left never touches the engine."""
        engine, queries = random_instance(0)
        slow = SlowEngine(engine)
        service = QueryService(slow, cache_capacity=256)

        async def drive():
            # A 5 s window means nothing dispatches during this test by
            # itself; the timed-out awaiter must abandon the flight.
            front = AsyncQueryService(service, window_seconds=5.0)
            with pytest.raises(asyncio.TimeoutError):
                await front.submit(queries[0], algorithm="bucketbound", timeout=0.02)
            stats = front.scheduling_stats()
            snapshot = front.snapshot()
            await front.close()
            return stats, snapshot

        scheduling, snapshot = asyncio.run(drive())
        assert slow.runs == 0
        assert scheduling["abandoned_flights"] == 1
        assert scheduling["waves"] == 0
        assert snapshot.timeouts == 1
        assert len(service.cache) == 0

    def test_timeout_after_dispatch_stops_the_wave_and_stays_clean(self):
        """Acceptance: an expired wave stops computing; nothing poisons
        the cache or stats, and later callers recompute correctly."""
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.15)
        service = QueryService(slow, cache_capacity=256)

        async def drive():
            async with AsyncQueryService(service) as front:
                with pytest.raises(asyncio.TimeoutError):
                    await front.submit(queries[0], algorithm="bucketbound", timeout=0.02)
                # close() drains the wave; it inherited the lone
                # awaiter's deadline and died with DeadlineExceeded, so
                # nothing about it may have entered the cache.
            return front.snapshot()

        snapshot = asyncio.run(drive())
        assert snapshot.timeouts == 1
        assert snapshot.errors == 0
        assert len(service.cache) == 0
        assert slow.runs == 1
        # A later caller recomputes from scratch and gets the right
        # answer — the abandoned wave left no trace.
        expected = fingerprint(engine.run(queries[0], algorithm="bucketbound"))
        assert fingerprint(service.submit(queries[0], algorithm="bucketbound")) == expected
        assert slow.runs == 2

    def test_one_timeout_among_live_awaiters_does_not_sink_them(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.1)
        service = QueryService(slow, cache_capacity=256)

        async def drive():
            async with AsyncQueryService(service) as front:
                outcomes = await asyncio.gather(
                    front.submit(queries[0], algorithm="bucketbound", timeout=0.01),
                    front.submit(queries[0], algorithm="bucketbound"),
                    return_exceptions=True,
                )
                return outcomes

        timed_out, served = asyncio.run(drive())
        assert isinstance(timed_out, asyncio.TimeoutError)
        assert fingerprint(served) == fingerprint(
            engine.run(queries[0], algorithm="bucketbound")
        )
        assert slow.runs == 1

    def test_cancellation_before_dispatch(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine)
        service = QueryService(slow, cache_capacity=256)

        async def drive():
            front = AsyncQueryService(service, window_seconds=5.0)
            task = asyncio.ensure_future(
                front.submit(queries[0], algorithm="bucketbound")
            )
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            stats = front.scheduling_stats()
            await front.close()
            return stats

        scheduling = asyncio.run(drive())
        assert slow.runs == 0
        assert scheduling["abandoned_flights"] == 1


class TestErrorsAndLifecycle:
    def test_failing_query_raises_only_its_own_awaiter(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        from repro.core.query import KORQuery

        bad = KORQuery(engine.graph.num_nodes + 7, 0, (), 4.0)

        async def drive():
            async with AsyncQueryService(service) as front:
                return await asyncio.gather(
                    front.submit(queries[0], algorithm="bucketbound"),
                    front.submit(bad, algorithm="bucketbound"),
                    front.submit(queries[1], algorithm="bucketbound"),
                    return_exceptions=True,
                )

        good_a, error, good_b = asyncio.run(drive())
        assert isinstance(error, QueryError)
        assert fingerprint(good_a) == fingerprint(
            engine.run(queries[0], algorithm="bucketbound")
        )
        assert fingerprint(good_b) == fingerprint(
            engine.run(queries[1], algorithm="bucketbound")
        )

    def test_closed_frontend_refuses_submissions(self):
        engine, queries = random_instance(0)
        service = QueryService(engine, cache_capacity=16)

        async def drive():
            front = AsyncQueryService(service)
            await front.close()
            await front.close()  # idempotent
            with pytest.raises(QueryError, match="closed"):
                await front.submit(queries[0], algorithm="bucketbound")

        asyncio.run(drive())

    def test_uncacheable_params_serve_solo_without_coalescing(self):
        """Trace submissions work, fill the sink, and never coalesce."""
        from repro.core.results import SearchTrace

        engine, queries = random_instance(0)
        service = QueryService(engine, cache_capacity=16)

        async def drive():
            async with AsyncQueryService(service) as front:
                traces = [SearchTrace(), SearchTrace()]
                results = await asyncio.gather(
                    front.submit(queries[0], algorithm="osscaling", trace=traces[0]),
                    front.submit(queries[0], algorithm="osscaling", trace=traces[1]),
                )
                return front.scheduling_stats(), traces, results

        scheduling, traces, results = asyncio.run(drive())
        # Identical queries, but caller-owned sinks: two solo flights.
        assert scheduling["flights"] == 2
        assert scheduling["waves"] == 2
        assert traces[0].events and traces[1].events
        assert fingerprint(results[0]) == fingerprint(results[1])

    def test_close_service_flag_closes_owned_sharded_service(self):
        engine, _queries = random_instance(0)
        sharded = ShardedQueryService(engine.graph, num_cells=1)

        async def drive():
            front = AsyncQueryService(sharded, close_service=True)
            await front.close()

        asyncio.run(drive())
        assert sharded.backend.shard_keys == ()


class TestStaleTimerRegression:
    """The max-batch overflow flush must disarm an armed window timer.

    Regression guard for the `_arm_flush`/`_flush` edge: the first
    submission arms a window timer, the ``max_batch``-th triggers an
    immediate flush — the timer must be cancelled by that flush, never
    left to fire a second (empty, or worse: refilled) wave.
    """

    def test_overflow_flush_disarms_the_window_timer(self):
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)
        executes = []
        original = service.execute

        def counting_execute(batch, **kwargs):
            executes.append(len(batch))
            return original(batch, **kwargs)

        service.execute = counting_execute

        async def drive():
            front = AsyncQueryService(service, window_seconds=0.03, max_batch=2)
            tasks = [
                asyncio.ensure_future(front.submit(q, algorithm="bucketbound"))
                for q in queries[:2]
            ]
            await asyncio.sleep(0)  # both enlist; the second overflows
            # The overflow flush ran synchronously and disarmed the
            # window timer the first submission had armed.
            assert front._flush_handle is None  # noqa: SLF001 - regression introspection
            assert front.scheduling_stats()["waves"] == 1
            # Let the original timer's instant pass with a refilled
            # queue behind it: a stale timer would dispatch this flight
            # in a second premature wave.
            third = asyncio.ensure_future(
                front.submit(queries[2], algorithm="bucketbound")
            )
            results = await asyncio.gather(*tasks, third)
            stats = front.scheduling_stats()
            await front.close()
            return results, stats

        results, scheduling = asyncio.run(drive())
        # Exactly two waves: the overflow pair and the third flight's own.
        assert scheduling["waves"] == 2
        assert executes == [2, 1]
        expected = [
            fingerprint(engine.run(q, algorithm="bucketbound")) for q in queries[:3]
        ]
        assert [fingerprint(r) for r in results] == expected

    def test_timer_flush_after_overflow_flush_is_harmless(self):
        """Sleeping past the window after an overflow must add no waves."""
        engine, queries = random_instance(2)
        service = QueryService(engine, cache_capacity=256)

        async def drive():
            front = AsyncQueryService(service, window_seconds=0.02, max_batch=2)
            await asyncio.gather(
                *(front.submit(q, algorithm="bucketbound") for q in queries[:2])
            )
            waves_after_overflow = front.scheduling_stats()["waves"]
            await asyncio.sleep(0.06)  # well past the armed window instant
            waves_after_wait = front.scheduling_stats()["waves"]
            await front.close()
            return waves_after_overflow, waves_after_wait

        waves_after_overflow, waves_after_wait = asyncio.run(drive())
        assert waves_after_overflow == 1
        assert waves_after_wait == 1  # the cancelled timer never refired


class TestAdaptiveMicroBatching:
    def make_front(self, **kwargs):
        engine, queries = random_instance(0)
        service = QueryService(engine, cache_capacity=256)
        kwargs.setdefault("adaptive_target_batch", 8)
        kwargs.setdefault("max_window_seconds", 0.05)
        return AsyncQueryService(service, **kwargs), queries

    def test_tune_derives_window_from_rate(self):
        front, _queries = self.make_front()
        assert front.window_seconds == 0.0  # no traffic observed yet
        window = front.tune(1000.0)
        assert window == pytest.approx(0.008)  # target 8 / 1000 qps
        assert front.window_seconds == pytest.approx(0.008)
        assert front.arrival_qps == pytest.approx(1000.0)
        scheduling = front.scheduling_stats()
        assert scheduling["adaptive"] is True
        assert scheduling["arrival_qps"] == pytest.approx(1000.0)

    def test_sparse_traffic_snaps_window_to_zero(self):
        """Below two expected arrivals per max window, batching delay
        buys nothing: the window must snap to 0, not linger."""
        front, _queries = self.make_front()
        front.tune(2000.0)
        assert front.window_seconds > 0.0
        assert front.tune(10.0) == 0.0  # 10 qps * 50 ms = 0.5 < 2 arrivals
        assert front.window_seconds == 0.0

    def test_window_is_capped_at_max_window_seconds(self):
        front, _queries = self.make_front(adaptive_target_batch=100)
        # target/rate = 1.0 s, far beyond the 50 ms cap.
        assert front.tune(100.0) == pytest.approx(0.05)

    def test_submissions_feed_the_arrival_ewma(self):
        front, queries = self.make_front(adaptive_target_batch=4)

        async def drive():
            for _ in range(5):
                await front.submit(queries[0], algorithm="bucketbound")
            rate = front.arrival_qps
            await front.close()
            return rate

        assert asyncio.run(drive()) > 0.0

    def test_fixed_window_front_ignores_tune_for_the_window(self):
        engine, _queries = random_instance(0)
        service = QueryService(engine, cache_capacity=16)
        front = AsyncQueryService(service, window_seconds=0.01)
        assert front.tune(1000.0) == pytest.approx(0.01)
        assert front.window_seconds == pytest.approx(0.01)
        assert front.arrival_qps == pytest.approx(1000.0)  # estimate still kept

    def test_invalid_knobs_rejected(self):
        engine, _queries = random_instance(0)
        service = QueryService(engine, cache_capacity=16)
        with pytest.raises(QueryError, match="adaptive_target_batch"):
            AsyncQueryService(service, adaptive_target_batch=1)
        with pytest.raises(QueryError, match="max_window_seconds"):
            AsyncQueryService(service, max_window_seconds=-0.1)
        front = AsyncQueryService(service)
        with pytest.raises(QueryError, match="arrival_qps"):
            front.tune(-1.0)

    def test_slo_violations_surface_in_frontend_snapshot(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.03)
        service = QueryService(slow, cache_capacity=0)

        async def drive():
            async with AsyncQueryService(service, slo_seconds=0.001) as front:
                await front.submit(queries[0], algorithm="bucketbound")
                return front.snapshot()

        snapshot = asyncio.run(drive())
        assert snapshot.slo_seconds == 0.001
        assert snapshot.slo_violations == 1
        assert snapshot.slo_violation_rate == pytest.approx(1.0)
