"""Fixtures for the serving-layer tests.

The CI matrix runs this directory once per execution backend by
exporting ``REPRO_BACKEND`` (``serial`` / ``thread`` / ``process``);
tests that take the ``service_backend`` fixture are transparently
re-pointed at the selected backend.  Unset, the default is ``thread`` —
the backend the flat service uses out of the box.
"""

from __future__ import annotations

import os

import pytest

from repro.service import backend_from_name


def configured_backend_name() -> str:
    """The backend name the environment selected (default ``thread``)."""
    return os.environ.get("REPRO_BACKEND", "thread")


@pytest.fixture
def service_backend():
    """A fresh instance of the environment-selected execution backend."""
    backend = backend_from_name(configured_backend_name(), workers=2)
    yield backend
    backend.close()
