"""Backend lifecycle edges: close idempotency, in-flight unregister,
cancellation of queued work, and bounded admission accounting.

These are the contracts the async front-end leans on: futures must
resolve (or cancel) cleanly whatever the registry and pools do around
them.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import QueryError
from repro.service import (
    ProcessBackend,
    SerialBackend,
    ShardTask,
    ThreadBackend,
)

from tests.service.test_backends import BACKEND_FACTORIES
from tests.service.test_differential import random_instance


class TestCloseIdempotency:
    @pytest.mark.parametrize("name", [name for name, _ in BACKEND_FACTORIES])
    def test_double_close_then_reuse(self, name):
        """close() twice is fine, and a closed backend rebuilds lazily."""
        engine, queries = random_instance(0)
        backend = dict(BACKEND_FACTORIES)[name]()
        handle = backend.register_engine(engine, key="reuse")
        task = ShardTask.build(handle.key, queries[0], "bucketbound", {})
        assert backend.run_tasks([task])[0].ok
        backend.close()
        backend.close()
        # Pools are rebuilt lazily: the backend serves again after close.
        assert backend.run_tasks([task])[0].ok
        backend.close()

    def test_close_before_any_use_is_a_noop(self):
        for _name, factory in BACKEND_FACTORIES:
            backend = factory()
            backend.close()
            backend.close()


class TestUnregisterInFlight:
    def test_unregister_other_shard_does_not_disturb_running_task(self):
        """A task in flight survives registry changes to *other* shards."""
        engine_a, queries_a = random_instance(0)
        engine_b, _ = random_instance(7)
        backend = ThreadBackend(workers=1)
        try:
            handle_a = backend.register_engine(engine_a, key="stays")
            backend.register_engine(engine_b, key="goes")
            gate = threading.Event()
            blocker = backend.submit_call(gate.wait, 5.0)
            queued = backend.submit_task(
                ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {})
            )
            backend.unregister("goes")
            gate.set()
            outcome = queued.result(timeout=10.0)
            assert outcome.ok
            assert blocker.result(timeout=10.0)
            assert backend.shard_keys == ("stays",)
        finally:
            backend.close()

    def test_unregister_own_shard_fails_the_queued_task_cleanly(self):
        """A task whose shard vanishes before execution reports a
        QueryError outcome — no hang, no crash, no poisoned future."""
        engine, queries = random_instance(0)
        backend = ThreadBackend(workers=1)
        try:
            handle = backend.register_engine(engine, key="vanishing")
            gate = threading.Event()
            backend.submit_call(gate.wait, 5.0)
            queued = backend.submit_task(
                ShardTask.build(handle.key, queries[0], "bucketbound", {})
            )
            backend.unregister("vanishing")
            gate.set()
            outcome = queued.result(timeout=10.0)
            assert not outcome.ok
            assert isinstance(outcome.error, QueryError)
            assert "not registered" in str(outcome.error)
        finally:
            backend.close()

    def test_process_backend_unregister_with_tasks_in_flight(self):
        """Registry changes retire lanes; in-flight futures still
        resolve and follow-up traffic uses the new handle set."""
        engine_a, queries_a = random_instance(0)
        engine_b, queries_b = random_instance(7)
        backend = ProcessBackend(workers=1)
        try:
            handle_a = backend.register_engine(engine_a, key="proc-a")
            handle_b = backend.register_engine(engine_b, key="proc-b")
            futures = [
                backend.submit_task(
                    ShardTask.build(handle_a.key, queries_a[i % len(queries_a)], "bucketbound", {})
                )
                for i in range(4)
            ]
            backend.unregister(handle_b.key)
            outcomes = [future.result(timeout=60.0) for future in futures]
            # Every future resolved; tasks either ran before the retire
            # or failed cleanly — none may hang or crash the backend.
            assert all(
                outcome.ok or isinstance(outcome.error, Exception) for outcome in outcomes
            )
            after = backend.run_tasks(
                [ShardTask.build(handle_a.key, queries_a[0], "bucketbound", {})]
            )
            assert after[0].ok
            assert backend.shard_keys == (handle_a.key,)
        finally:
            backend.close()


class TestCancellation:
    def test_cancel_submitted_but_unstarted_task(self):
        """A queued task can be cancelled before a worker picks it up;
        the admission slot is returned."""
        engine, queries = random_instance(0)
        backend = ThreadBackend(workers=1)
        try:
            handle = backend.register_engine(engine, key="cancellable")
            gate = threading.Event()
            blocker = backend.submit_call(gate.wait, 5.0)
            queued = backend.submit_task(
                ShardTask.build(handle.key, queries[0], "bucketbound", {})
            )
            assert queued.cancel(), "an unstarted pool task must cancel"
            gate.set()
            assert queued.cancelled()
            assert blocker.result(timeout=10.0)
            # The done-callback released the cancelled task's slot.
            deadline = time.time() + 5.0
            while backend.in_flight and time.time() < deadline:
                time.sleep(0.01)
            assert backend.in_flight == 0
        finally:
            backend.close()

    def test_run_tasks_reports_cancelled_slots_as_errors(self):
        """The batch wrapper folds a cancelled future into a per-slot
        QueryError outcome instead of raising out of the batch."""
        from repro.service.backends import _outcome_of

        engine, queries = random_instance(0)
        backend = ThreadBackend(workers=1)
        try:
            handle = backend.register_engine(engine, key="slots")
            gate = threading.Event()
            backend.submit_call(gate.wait, 5.0)
            queued = backend.submit_task(
                ShardTask.build(handle.key, queries[0], "bucketbound", {})
            )
            assert queued.cancel()
            gate.set()
            outcome = _outcome_of(queued)
            assert not outcome.ok
            assert isinstance(outcome.error, QueryError)
            assert "cancelled" in str(outcome.error)
        finally:
            backend.close()


class TestBoundedAdmission:
    def test_submissions_block_at_max_in_flight(self):
        backend = ThreadBackend(workers=2, max_in_flight=2)
        try:
            gate = threading.Event()
            first = backend.submit_call(gate.wait, 10.0)
            second = backend.submit_call(gate.wait, 10.0)
            assert backend.in_flight == 2

            third_admitted = threading.Event()
            third_result: list = []

            def oversubscribe():
                future = backend.submit_call(lambda: "ran")
                third_admitted.set()
                third_result.append(future.result(timeout=10.0))

            thread = threading.Thread(target=oversubscribe)
            thread.start()
            # The third submission must be *blocked*, not admitted.
            assert not third_admitted.wait(0.2)
            gate.set()
            thread.join(timeout=10.0)
            assert third_admitted.is_set()
            assert third_result == ["ran"]
            assert first.result(timeout=10.0) and second.result(timeout=10.0)

            assert backend.peak_in_flight == 2
            assert backend.admission_waits >= 1
        finally:
            backend.close()

    def test_serial_backend_counts_depth_without_blocking(self):
        engine, queries = random_instance(0)
        backend = SerialBackend(max_in_flight=1)
        try:
            handle = backend.register_engine(engine, key="serial-depth")
            outcomes = backend.run_tasks(
                [ShardTask.build(handle.key, q, "bucketbound", {}) for q in queries[:3]]
            )
            assert all(outcome.ok for outcome in outcomes)
            # Serial tasks resolve at submission: depth never exceeds 1
            # and nothing ever has to wait.
            assert backend.peak_in_flight == 1
            assert backend.in_flight == 0
            assert backend.admission_waits == 0
        finally:
            backend.close()

    def test_service_snapshot_surfaces_queue_depth(self):
        from repro.service import QueryService

        engine, queries = random_instance(0)
        backend = ThreadBackend(workers=2, max_in_flight=8)
        try:
            service = QueryService(engine, cache_capacity=0, backend=backend)
            service.run_batch(queries, algorithm="bucketbound")
            snapshot = service.snapshot()
            assert snapshot.queue_depth_peak >= 1
        finally:
            backend.close()


class TestSubmitTaskProtocol:
    @pytest.mark.parametrize("name", [name for name, _ in BACKEND_FACTORIES])
    def test_submit_task_future_resolves_to_the_batch_answer(self, name):
        """The futures primitive and the batch wrapper agree exactly."""
        engine, queries = random_instance(3)
        backend = dict(BACKEND_FACTORIES)[name]()
        try:
            handle = backend.register_engine(engine, key="proto")
            tasks = [
                ShardTask.build(handle.key, query, "bucketbound", {}) for query in queries
            ]
            via_futures = [backend.submit_task(task).result(timeout=60.0) for task in tasks]
            batch = backend.run_tasks(tasks)
            for single, batched in zip(via_futures, batch):
                assert single.ok == batched.ok
                if single.ok:
                    assert (
                        single.result.objective_score == batched.result.objective_score
                    )
                    assert single.result.route == batched.result.route
        finally:
            backend.close()

    def test_submit_call_rejected_out_of_process(self):
        backend = ProcessBackend(workers=1)
        try:
            with pytest.raises(QueryError, match="closures"):
                backend.submit_call(lambda: 1)
        finally:
            backend.close()
