"""Property-based tests of cache-key canonicalization.

The contract (tests drive :func:`repro.service.canonical_cache_key`):

* keyword **order** and **duplicates** never change the key — any
  permutation-with-repetition of the same keyword set canonicalizes
  identically;
* everything that can change the answer — source, target, budget,
  algorithm, parameter values — always changes the key (no collisions).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.query import KORQuery
from repro.exceptions import QueryError
from repro.service import canonical_cache_key

from tests.strategies import KEYWORD_POOL, graph_and_query

LENIENT = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

keyword_sets = st.lists(
    st.sampled_from(KEYWORD_POOL), min_size=1, max_size=4, unique=True
)


@st.composite
def shuffled_with_duplicates(draw, base):
    """A reordering of *base* with some keywords repeated."""
    words = list(base)
    extras = draw(st.lists(st.sampled_from(words), min_size=0, max_size=3))
    combined = words + extras
    permutation = draw(st.permutations(combined))
    return tuple(permutation)


class TestOrderAndDuplicateInvariance:
    @LENIENT
    @given(st.data(), keyword_sets)
    def test_any_reordering_with_duplicates_gives_same_key(self, data, base):
        variant_a = data.draw(shuffled_with_duplicates(base))
        variant_b = data.draw(shuffled_with_duplicates(base))
        key_a = canonical_cache_key(KORQuery(0, 1, variant_a, 4.0), "bucketbound")
        key_b = canonical_cache_key(KORQuery(0, 1, variant_b, 4.0), "bucketbound")
        assert key_a == key_b

    @LENIENT
    @given(graph_and_query(), st.data())
    def test_reordering_real_instances(self, instance, data):
        """Same invariance on queries drawn against real random graphs."""
        _graph, source, target, keywords, delta = instance
        if not keywords:
            return
        shuffled = data.draw(st.permutations(list(keywords)))
        original = KORQuery(source, target, keywords, delta)
        reordered = KORQuery(source, target, tuple(shuffled), delta)
        assert canonical_cache_key(original, "osscaling") == canonical_cache_key(
            reordered, "osscaling"
        )


class TestNoCollisions:
    @LENIENT
    @given(
        st.integers(0, 50),
        st.integers(0, 50),
        st.integers(0, 50),
        st.integers(0, 50),
        keyword_sets,
    )
    def test_distinct_endpoints_never_collide(self, s1, t1, s2, t2, words):
        if (s1, t1) == (s2, t2):
            return
        key1 = canonical_cache_key(KORQuery(s1, t1, words, 4.0), "bucketbound")
        key2 = canonical_cache_key(KORQuery(s2, t2, words, 4.0), "bucketbound")
        assert key1 != key2

    @LENIENT
    @given(
        st.floats(0.5, 100.0, allow_nan=False),
        st.floats(0.5, 100.0, allow_nan=False),
        keyword_sets,
    )
    def test_distinct_budgets_never_collide(self, d1, d2, words):
        if d1 == d2:
            return
        key1 = canonical_cache_key(KORQuery(0, 1, words, d1), "bucketbound")
        key2 = canonical_cache_key(KORQuery(0, 1, words, d2), "bucketbound")
        assert key1 != key2

    @LENIENT
    @given(keyword_sets, keyword_sets)
    def test_distinct_keyword_sets_never_collide(self, words1, words2):
        if set(words1) == set(words2):
            return
        key1 = canonical_cache_key(KORQuery(0, 1, words1, 4.0), "bucketbound")
        key2 = canonical_cache_key(KORQuery(0, 1, words2, 4.0), "bucketbound")
        assert key1 != key2

    def test_algorithm_and_params_separate_entries(self):
        query = KORQuery(0, 1, ("pub",), 4.0)
        keys = {
            canonical_cache_key(query, "osscaling"),
            canonical_cache_key(query, "bucketbound"),
            canonical_cache_key(query, "osscaling", {"epsilon": 0.1}),
            canonical_cache_key(query, "osscaling", {"epsilon": 0.5}),
            canonical_cache_key(query, "bucketbound", {"epsilon": 0.5, "beta": 1.2}),
            canonical_cache_key(query, "bucketbound", {"epsilon": 0.5, "beta": 2.0}),
        }
        assert len(keys) == 6

    def test_unhashable_params_are_rejected(self):
        query = KORQuery(0, 1, ("pub",), 4.0)
        try:
            canonical_cache_key(query, "bucketbound", {"weird": []})
        except QueryError:
            return
        raise AssertionError("expected QueryError for unhashable parameter")
