"""Property-based tests of cache-key canonicalization and eviction.

The contract (tests drive :func:`repro.service.canonical_cache_key` and
:class:`repro.service.ResultCache`):

* keyword **order** and **duplicates** never change the key — any
  permutation-with-repetition of the same keyword set canonicalizes
  identically;
* everything that can change the answer — source, target, budget,
  algorithm, parameter values — always changes the key (no collisions);
* size-aware eviction: with a ``max_route_nodes`` budget, the summed
  stored route size never exceeds the budget after any operation
  sequence, eviction is LRU, and an entry bigger than the whole budget
  is refused outright.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.query import KORQuery
from repro.core.results import KORResult
from repro.core.route import Route
from repro.exceptions import QueryError
from repro.service import ResultCache, canonical_cache_key

from tests.strategies import KEYWORD_POOL, graph_and_query

LENIENT = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

keyword_sets = st.lists(
    st.sampled_from(KEYWORD_POOL), min_size=1, max_size=4, unique=True
)


@st.composite
def shuffled_with_duplicates(draw, base):
    """A reordering of *base* with some keywords repeated."""
    words = list(base)
    extras = draw(st.lists(st.sampled_from(words), min_size=0, max_size=3))
    combined = words + extras
    permutation = draw(st.permutations(combined))
    return tuple(permutation)


class TestOrderAndDuplicateInvariance:
    @LENIENT
    @given(st.data(), keyword_sets)
    def test_any_reordering_with_duplicates_gives_same_key(self, data, base):
        variant_a = data.draw(shuffled_with_duplicates(base))
        variant_b = data.draw(shuffled_with_duplicates(base))
        key_a = canonical_cache_key(KORQuery(0, 1, variant_a, 4.0), "bucketbound")
        key_b = canonical_cache_key(KORQuery(0, 1, variant_b, 4.0), "bucketbound")
        assert key_a == key_b

    @LENIENT
    @given(graph_and_query(), st.data())
    def test_reordering_real_instances(self, instance, data):
        """Same invariance on queries drawn against real random graphs."""
        _graph, source, target, keywords, delta = instance
        if not keywords:
            return
        shuffled = data.draw(st.permutations(list(keywords)))
        original = KORQuery(source, target, keywords, delta)
        reordered = KORQuery(source, target, tuple(shuffled), delta)
        assert canonical_cache_key(original, "osscaling") == canonical_cache_key(
            reordered, "osscaling"
        )


class TestNoCollisions:
    @LENIENT
    @given(
        st.integers(0, 50),
        st.integers(0, 50),
        st.integers(0, 50),
        st.integers(0, 50),
        keyword_sets,
    )
    def test_distinct_endpoints_never_collide(self, s1, t1, s2, t2, words):
        if (s1, t1) == (s2, t2):
            return
        key1 = canonical_cache_key(KORQuery(s1, t1, words, 4.0), "bucketbound")
        key2 = canonical_cache_key(KORQuery(s2, t2, words, 4.0), "bucketbound")
        assert key1 != key2

    @LENIENT
    @given(
        st.floats(0.5, 100.0, allow_nan=False),
        st.floats(0.5, 100.0, allow_nan=False),
        keyword_sets,
    )
    def test_distinct_budgets_never_collide(self, d1, d2, words):
        if d1 == d2:
            return
        key1 = canonical_cache_key(KORQuery(0, 1, words, d1), "bucketbound")
        key2 = canonical_cache_key(KORQuery(0, 1, words, d2), "bucketbound")
        assert key1 != key2

    @LENIENT
    @given(keyword_sets, keyword_sets)
    def test_distinct_keyword_sets_never_collide(self, words1, words2):
        if set(words1) == set(words2):
            return
        key1 = canonical_cache_key(KORQuery(0, 1, words1, 4.0), "bucketbound")
        key2 = canonical_cache_key(KORQuery(0, 1, words2, 4.0), "bucketbound")
        assert key1 != key2

    def test_algorithm_and_params_separate_entries(self):
        query = KORQuery(0, 1, ("pub",), 4.0)
        keys = {
            canonical_cache_key(query, "osscaling"),
            canonical_cache_key(query, "bucketbound"),
            canonical_cache_key(query, "osscaling", {"epsilon": 0.1}),
            canonical_cache_key(query, "osscaling", {"epsilon": 0.5}),
            canonical_cache_key(query, "bucketbound", {"epsilon": 0.5, "beta": 1.2}),
            canonical_cache_key(query, "bucketbound", {"epsilon": 0.5, "beta": 2.0}),
        }
        assert len(keys) == 6

    def test_unhashable_params_are_rejected(self):
        query = KORQuery(0, 1, ("pub",), 4.0)
        try:
            canonical_cache_key(query, "bucketbound", {"weird": []})
        except QueryError:
            return
        raise AssertionError("expected QueryError for unhashable parameter")


# ----------------------------------------------------------------------
# size-aware eviction (max_route_nodes budget)
# ----------------------------------------------------------------------


def make_result(route_nodes: int) -> KORResult:
    """A synthetic result whose stored size is *route_nodes* nodes."""
    route = (
        Route(
            nodes=tuple(range(route_nodes)),
            objective_score=float(route_nodes),
            budget_score=float(route_nodes),
        )
        if route_nodes > 0
        else None
    )
    return KORResult(
        query=KORQuery(0, 1, ("pub",), 4.0),
        algorithm="bucketbound",
        route=route,
        covers_keywords=route is not None,
        within_budget=route is not None,
        failure_reason=None if route is not None else "synthetic: no route",
    )


#: An op is (key, route_size) for put, or (key, None) for get.
cache_ops = st.lists(
    st.tuples(st.integers(0, 7), st.one_of(st.none(), st.integers(0, 9))),
    min_size=0,
    max_size=40,
)


class TestSizeAwareEviction:
    @LENIENT
    @given(st.integers(1, 6), st.integers(0, 12), cache_ops)
    def test_budget_and_capacity_hold_after_any_op_sequence(
        self, capacity, budget, ops
    ):
        cache = ResultCache(capacity, max_route_nodes=budget)
        for key, size in ops:
            if size is None:
                cache.get(key)
            else:
                cache.put(key, make_result(size))
            assert len(cache) <= capacity
            assert cache.total_route_nodes <= budget

    @LENIENT
    @given(cache_ops)
    def test_unbudgeted_cache_never_size_evicts(self, ops):
        """max_route_nodes=None keeps PR 1 semantics: count-only LRU."""
        cache = ResultCache(capacity=64)
        stored: dict = {}
        for key, size in ops:
            if size is None:
                continue
            cache.put(key, make_result(size))
            stored[key] = size
        assert len(cache) == len(stored)
        assert cache.total_route_nodes == sum(stored.values())
        assert cache.stats.evictions == 0

    def test_total_tracks_replacement_of_same_key(self):
        cache = ResultCache(8, max_route_nodes=100)
        cache.put("k", make_result(9))
        assert cache.total_route_nodes == 9
        cache.put("k", make_result(3))
        assert cache.total_route_nodes == 3
        assert len(cache) == 1

    def test_eviction_is_lru_under_size_pressure(self):
        cache = ResultCache(16, max_route_nodes=10)
        cache.put("a", make_result(4))
        cache.put("b", make_result(4))
        cache.get("a")  # refresh: b is now the LRU entry
        cache.put("c", make_result(4))  # 12 > 10 -> evict b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.total_route_nodes == 8

    def test_oversize_entry_is_refused_and_counted(self):
        cache = ResultCache(8, max_route_nodes=5)
        cache.put("small", make_result(3))
        before = len(cache)
        cache.put("huge", make_result(6))
        assert "huge" not in cache
        assert len(cache) == before  # nothing was evicted to make room
        assert cache.stats.oversize_rejections == 1

    def test_routeless_results_cost_nothing(self):
        cache = ResultCache(8, max_route_nodes=0)
        cache.put("miss", make_result(0))
        assert "miss" in cache
        assert cache.total_route_nodes == 0

    def test_negative_budget_rejected(self):
        try:
            ResultCache(8, max_route_nodes=-1)
        except QueryError:
            return
        raise AssertionError("expected QueryError for negative max_route_nodes")
