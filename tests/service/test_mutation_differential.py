"""Differential oracle for the dynamic world: incremental == rebuild.

The acceptance bar for live mutation (ISSUE 9): after **any** random
mutation sequence, a service repaired incrementally must be
fingerprint-identical to one rebuilt from scratch over the final graph —
for every algorithm in ``ALGORITHMS``, on the flat and the sharded tier,
on every execution backend (the CI matrix re-runs this module per
``REPRO_BACKEND``).

Sequences are seeded and validity-tracked: each op is generated against
the world state its predecessors produced, so every sequence is legal by
construction and replays identically against the service under test,
the from-scratch oracle, and any process-pool worker.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.engine import ALGORITHMS, KOREngine
from repro.core.query import KORQuery
from repro.graph.mutation import GraphMutator, resolve_ops
from repro.service import QueryService, ShardedQueryService
from repro.service.cache import ResultCache
from repro.service.faults import FaultPlan, FaultRule, injected
from repro.world import MutableWorld

from tests.service.test_differential import (
    KEYWORD_POOL,
    WEIGHTS,
    fingerprint,
    random_instance,
)

pytestmark = pytest.mark.timeout(300)

#: The acceptance criterion's sequence length.
SEQUENCE_LENGTH = 50


def mutation_sequence(graph, seed: int, count: int = SEQUENCE_LENGTH):
    """*count* wire ops, each valid against the state its predecessors left.

    Tracks closure state through a scratch :class:`GraphMutator`, so the
    recorded list can be replayed verbatim against any replica of the
    same base graph.  Keeps at least two nodes open so the world never
    collapses to nothing queryable.
    """
    rng = random.Random(seed)
    mutator = GraphMutator(graph)
    ops = []
    while len(ops) < count:
        current = mutator.graph
        closed = mutator.closed_nodes
        open_nodes = [u for u in range(graph.num_nodes) if u not in closed]
        edges = [
            (u, v) for u in open_nodes for v, _obj, _bud in current.out_edges(u)
        ]
        kinds = ["update_keywords"]
        if edges:
            kinds.extend(["update_edge_cost"] * 3)
        # Closing may strip every remaining edge from a tiny graph, which
        # would make the scaling algorithms degenerate (theta needs a
        # finite min edge weight) — only offer closures that keep at
        # least one edge in the world.
        closable = []
        if len(open_nodes) > 2:
            total_edges = sum(len(current.out_edges(u)) for u in open_nodes)
            for node in open_nodes:
                incident = len(current.out_edges(node)) + sum(
                    1
                    for u in open_nodes
                    if u != node and current.has_edge(u, node)
                )
                if total_edges - incident >= 1:
                    closable.append(node)
        if closable:
            kinds.append("close_node")
        if closed:
            kinds.extend(["open_node"] * 2)
        kind = rng.choice(kinds)
        if kind == "update_edge_cost":
            u, v = rng.choice(edges)
            op = {"op": "update_edge_cost", "u": u, "v": v}
            which = rng.randrange(3)
            if which in (0, 2):
                op["objective"] = rng.choice(WEIGHTS)
            if which in (1, 2):
                op["budget"] = rng.choice(WEIGHTS)
        elif kind == "close_node":
            op = {"op": "close_node", "node": rng.choice(closable)}
        elif kind == "open_node":
            op = {"op": "open_node", "node": rng.choice(sorted(closed))}
        else:
            node = rng.choice(open_nodes)
            words = rng.sample(KEYWORD_POOL, rng.randint(0, 2))
            op = {"op": "update_keywords", "node": node, "keywords": words}
        mutator.apply_op(op)
        ops.append(op)
    return ops


def chunked(ops, seed: int):
    """Split *ops* into random batches of 1..5 (how callers really apply)."""
    rng = random.Random(seed ^ 0x5EED)
    start = 0
    while start < len(ops):
        size = rng.randint(1, 5)
        yield ops[start : start + size]
        start += size


def query_battery(graph, seed: int, count: int = 8):
    """Queries against whatever keywords the mutated world ended up with."""
    rng = random.Random(seed + 71)
    present = sorted(set(graph.keyword_table.words))
    n = graph.num_nodes
    queries = []
    for _ in range(count):
        keywords = (
            tuple(rng.sample(present, rng.randint(1, min(2, len(present)))))
            if present
            else ()
        )
        queries.append(
            KORQuery(rng.randrange(n), rng.randrange(n), keywords, rng.choice((2.0, 4.0, 6.0)))
        )
    return queries


def assert_all_algorithms_match(service, oracle_run, queries):
    """Service battery == oracle battery, per slot, every algorithm."""
    for algorithm in ALGORITHMS:
        expected = [fingerprint(oracle_run(q, algorithm)) for q in queries]
        got = [
            fingerprint(r)
            for r in service.run_batch(queries, algorithm=algorithm)
        ]
        assert got == expected, f"{algorithm}: incremental != rebuild"


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_flat_incremental_matches_fresh_engine(seed, service_backend):
    """Flat tier: a 50-op sequence applied through ``QueryService``
    serves exactly what a fresh engine over the final graph serves."""
    engine, _queries = random_instance(seed)
    ops = mutation_sequence(engine.graph, seed)

    service = QueryService(engine, cache_capacity=256, backend=service_backend)
    epochs = [service.apply_ops(batch) for batch in chunked(ops, seed)]
    assert epochs == sorted(set(epochs))  # one bump per batch, monotonic

    oracle_mutator = GraphMutator(engine.graph)
    resolve_ops(oracle_mutator, ops)
    oracle = KOREngine(oracle_mutator.graph)
    queries = query_battery(service.engine.graph, seed)
    assert_all_algorithms_match(
        service, lambda q, a: oracle.run(q, algorithm=a), queries
    )


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_sharded_incremental_matches_rebuilt_world(seed, service_backend):
    """Sharded tier: incremental repair (cells + border tier) after a
    50-op sequence == a world rebuilt from scratch on the same
    partition, for all six algorithms."""
    engine, warmup = random_instance(seed)
    world = MutableWorld(engine.graph, num_cells=2, seed=0)
    service = ShardedQueryService(world=world, backend=service_backend)
    # Warm the backend (materialised engines, process lanes) *before*
    # mutating, so repair exercises the live patch-broadcast path and
    # not just fresh construction.
    service.run_batch(warmup[:4], algorithm="greedy")

    for batch in chunked(mutation_sequence(engine.graph, seed), seed):
        service.apply_ops(batch)
    assert service.epoch == world.epoch > 0

    oracle = ShardedQueryService(world=world.rebuilt())
    try:
        queries = query_battery(world.graph, seed)
        assert_all_algorithms_match(
            service,
            lambda q, a: oracle.run_batch([q], algorithm=a)[0],
            queries,
        )
    finally:
        oracle.close()


def test_convenience_methods_equal_wire_ops(service_backend):
    """The four typed methods and their wire-op spellings are the same
    mutation (same resulting answers, one epoch bump each)."""
    engine, _ = random_instance(0)
    via_methods = QueryService(KOREngine(engine.graph), cache_capacity=64)
    via_ops = QueryService(
        KOREngine(engine.graph), cache_capacity=64, backend=service_backend
    )

    via_methods.update_edge_cost(0, 1, objective=2.5)
    via_methods.close_node(2)
    via_methods.open_node(2)
    via_methods.update_keywords(1, ["imax", "park"])
    epoch = via_ops.apply_ops(
        [
            {"op": "update_edge_cost", "u": 0, "v": 1, "objective": 2.5},
            {"op": "close_node", "node": 2},
            {"op": "open_node", "node": 2},
            {"op": "update_keywords", "node": 1, "keywords": ["imax", "park"]},
        ]
    )
    assert via_methods.epoch == 4  # one bump per method call
    assert epoch == 1  # one bump for the whole batch

    queries = query_battery(via_ops.engine.graph, 0)
    for algorithm in ("bucketbound", "exact"):
        lhs = via_methods.run_batch(queries, algorithm=algorithm)
        rhs = via_ops.run_batch(queries, algorithm=algorithm)
        assert [fingerprint(r) for r in lhs] == [fingerprint(r) for r in rhs]


def test_world_level_incremental_repair_equals_rebuild():
    """``MutableWorld`` repair bookkeeping: repaired/refreshed cells are
    reported, the epoch counts batches, and the repaired tables match a
    from-scratch build on the same partition."""
    engine, _ = random_instance(1)
    world = MutableWorld(engine.graph, num_cells=2, seed=0)
    ops = mutation_sequence(engine.graph, 9)
    for batch in chunked(ops, 9):
        update = world.apply_ops(batch)
        assert update.epoch == world.epoch
        assert set(update.repaired_cells) <= set(update.refreshed_cells)

    rebuilt = world.rebuilt()
    assert rebuilt.epoch == 0
    assert rebuilt.partition is world.partition
    for cell in range(world.num_cells):
        lhs, rhs = world.cells[cell].tables, rebuilt.cells[cell].tables
        assert (lhs.os_tau == rhs.os_tau).all()
        assert (lhs.bs_sigma == rhs.bs_sigma).all()
    assert (world.tables.border_os_tau == rebuilt.tables.border_os_tau).all()
    assert (world.tables.border_bs_sigma == rebuilt.tables.border_bs_sigma).all()


class TestUpdateWhileServing:
    """Chaos (satellite d): updates landing mid-flight never corrupt.

    Reuses the fault injectors from ``repro.service.faults`` to hold a
    batch open while ``apply_ops`` lands.  The containment invariant:
    a slot served during the update matches the pre-update world or the
    post-update world — never a silent third answer — and everything
    served *after* the update is exactly the new world.
    """

    def test_flat_update_mid_batch_serves_old_or_new_world(self, service_backend):
        engine, _ = random_instance(3)
        base_graph = engine.graph
        service = QueryService(engine, cache_capacity=64, backend=service_backend)
        queries = query_battery(base_graph, 3, count=10)
        pre_oracle = KOREngine(base_graph)
        pre = [fingerprint(pre_oracle.run(q, algorithm="exact")) for q in queries]

        ops = mutation_sequence(base_graph, 31, count=5)
        post_mutator = GraphMutator(base_graph)
        resolve_ops(post_mutator, ops)
        post_oracle = KOREngine(post_mutator.graph)
        post = [fingerprint(post_oracle.run(q, algorithm="exact")) for q in queries]

        plan = FaultPlan([FaultRule(kind="delay_task", seconds=0.02, times=4)])
        outcome = {}

        def serve():
            outcome["report"] = service.execute(queries, algorithm="exact")

        with injected(plan):
            worker = threading.Thread(target=serve)
            worker.start()
            time.sleep(0.01)
            service.apply_ops(ops)
            worker.join(60.0)

        report = outcome["report"]
        for index, (item, old, new) in enumerate(zip(report.items, pre, post)):
            assert item.result is not None, f"slot {index} failed mid-update"
            assert fingerprint(item.result) in (old, new), (
                f"slot {index} served an answer matching neither the "
                f"pre-update nor the post-update world"
            )
        # After the update the cache epoch has moved: serving is the new
        # world exactly, never a stale pre-update entry.
        after = service.run_batch(queries, algorithm="exact")
        assert [fingerprint(r) for r in after] == post

    def test_sharded_update_mid_batch_is_contained(self, service_backend):
        engine, _ = random_instance(4)
        world = MutableWorld(engine.graph, num_cells=2, seed=0)
        service = ShardedQueryService(world=world, backend=service_backend)
        queries = query_battery(world.graph, 4, count=10)
        service.run_batch(queries[:4], algorithm="greedy")  # warm lanes

        ops = mutation_sequence(world.graph, 41, count=5)
        plan = FaultPlan([FaultRule(kind="delay_task", seconds=0.02, times=4)])
        outcome = {}

        def serve():
            outcome["report"] = service.execute(queries, algorithm="exact")

        with injected(plan):
            worker = threading.Thread(target=serve)
            worker.start()
            time.sleep(0.01)
            service.apply_ops(ops)
            worker.join(60.0)

        # No slot may fail because an update landed mid-flight.
        assert all(item.result is not None for item in outcome["report"].items)

        # Post-update serving is exactly the rebuilt world, for every
        # algorithm — the repair + epoch fence left nothing stale behind.
        oracle = ShardedQueryService(world=world.rebuilt())
        try:
            assert_all_algorithms_match(
                service,
                lambda q, a: oracle.run_batch([q], algorithm=a)[0],
                queries,
            )
        finally:
            oracle.close()


class TestEpochFence:
    def test_leader_from_old_epoch_cannot_poison_new_epoch(self):
        """Regression (satellite c): a ``get_or_compute`` leader that
        resolves after a mid-flight ``invalidate()`` must not populate
        the new epoch's cache."""
        cache = ResultCache(capacity=8)
        computing = threading.Event()
        release = threading.Event()
        outcome = {}

        def slow_compute():
            computing.set()
            assert release.wait(5.0)
            return "stale-answer"

        def leader():
            outcome["value"], outcome["status"] = cache.get_or_compute(
                "key", slow_compute
            )

        worker = threading.Thread(target=leader)
        worker.start()
        assert computing.wait(5.0)
        cache.invalidate()  # the engine swap lands mid-flight
        release.set()
        worker.join(5.0)

        # The leader still gets its (old-world) answer...
        assert outcome["value"] == "stale-answer"
        # ...but the new epoch's cache never saw it.
        assert cache.get("key") is None

    def test_apply_ops_drops_inflight_old_epoch_writes(self, service_backend):
        """A query computed against the old graph must not be served
        from cache after the update that obsoleted it."""
        engine, _ = random_instance(2)
        service = QueryService(engine, cache_capacity=64, backend=service_backend)
        u, (v, _obj, _bud) = next(
            (node, edge)
            for node in range(engine.graph.num_nodes)
            for edge in engine.graph.out_edges(node)
        )
        query = KORQuery(u, v, (), 6.0)
        before = service.run_batch([query], algorithm="exact")[0]
        service.update_edge_cost(u, v, objective=0.25, budget=0.25)
        after = service.run_batch([query], algorithm="exact")[0]
        oracle = KOREngine(service.engine.graph)
        assert fingerprint(after) == fingerprint(oracle.run(query, algorithm="exact"))
        # The pre-update answer went through a strictly costlier edge.
        if before.found and after.found:
            assert after.budget_score <= before.budget_score
