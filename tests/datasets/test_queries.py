"""Tests for benchmark query generation (repro.datasets.queries)."""

import pytest

from repro.datasets.queries import QuerySetConfig, generate_query_set, generate_query_sets
from repro.exceptions import DatasetError


class TestGeneration:
    def test_counts_and_keywords(self, small_flickr_engine):
        graph = small_flickr_engine.graph
        config = QuerySetConfig(num_queries=10, num_keywords=3, budget_limit=5.0, seed=1)
        queries = generate_query_set(graph, small_flickr_engine.index, config,
                                     tables=small_flickr_engine.tables)
        assert len(queries) == 10
        for query in queries:
            assert query.num_keywords == 3
            assert query.budget_limit == 5.0
            assert 0 <= query.source < graph.num_nodes
            assert 0 <= query.target < graph.num_nodes

    def test_keywords_exist_in_graph(self, small_flickr_engine):
        graph = small_flickr_engine.graph
        config = QuerySetConfig(num_queries=10, num_keywords=2, seed=2)
        queries = generate_query_set(graph, small_flickr_engine.index, config,
                                     tables=small_flickr_engine.tables)
        for query in queries:
            for word in query.keywords:
                assert graph.keyword_table.get(word) is not None

    def test_endpoint_filter_respects_sigma_budget(self, small_flickr_engine):
        config = QuerySetConfig(
            num_queries=8, num_keywords=2, budget_limit=5.0,
            max_sigma_fraction=0.5, seed=3,
        )
        queries = generate_query_set(
            small_flickr_engine.graph, small_flickr_engine.index, config,
            tables=small_flickr_engine.tables,
        )
        for query in queries:
            sigma = small_flickr_engine.tables.bs_sigma[query.source, query.target]
            assert sigma <= 0.5 * 5.0 + 1e-9

    def test_keyword_detour_screen(self, small_flickr_engine):
        """Every query keyword must admit a within-budget detour node."""
        config = QuerySetConfig(
            num_queries=8, num_keywords=3, budget_limit=5.0,
            screen_keyword_detour=True, seed=4,
        )
        queries = generate_query_set(
            small_flickr_engine.graph, small_flickr_engine.index, config,
            tables=small_flickr_engine.tables,
        )
        tables = small_flickr_engine.tables
        index = small_flickr_engine.index
        table = small_flickr_engine.graph.keyword_table
        for query in queries:
            for word in query.keywords:
                nodes = index.postings(table.id_of(word))
                detours = (
                    tables.bs_sigma[query.source, nodes]
                    + tables.bs_sigma[nodes, query.target]
                )
                assert (detours <= query.budget_limit).any()

    def test_deterministic_given_seed(self, small_flickr_engine):
        config = QuerySetConfig(num_queries=5, num_keywords=2, seed=7)
        a = generate_query_set(small_flickr_engine.graph, small_flickr_engine.index,
                               config, tables=small_flickr_engine.tables)
        b = generate_query_set(small_flickr_engine.graph, small_flickr_engine.index,
                               config, tables=small_flickr_engine.tables)
        assert [(q.source, q.target, q.keywords) for q in a] == [
            (q.source, q.target, q.keywords) for q in b
        ]

    def test_too_many_keywords_raises(self, small_flickr_engine):
        config = QuerySetConfig(num_queries=1, num_keywords=10**6)
        with pytest.raises(DatasetError, match="cannot sample"):
            generate_query_set(small_flickr_engine.graph, small_flickr_engine.index,
                               config, tables=small_flickr_engine.tables)

    def test_battery_generates_all_keyword_counts(self, small_flickr_engine):
        sets = generate_query_sets(
            small_flickr_engine.graph, small_flickr_engine.index,
            keyword_counts=(2, 4), num_queries=3,
            tables=small_flickr_engine.tables,
        )
        assert set(sets) == {2, 4}
        assert all(len(queries) == 3 for queries in sets.values())
