"""Tests for the Flickr-like graph pipeline (repro.datasets.flickr)."""

import math

import pytest

from repro.datasets.flickr import FlickrConfig, build_flickr_graph
from repro.datasets.photos import PhotoStreamConfig
from repro.exceptions import DatasetError
from repro.graph.validation import is_strongly_connected


class TestPipeline:
    def test_dataset_statistics_populated(self, small_flickr):
        assert small_flickr.num_photos > 0
        assert small_flickr.num_locations == small_flickr.graph.num_nodes
        assert small_flickr.total_trips > 0
        assert small_flickr.num_tags > 0
        assert "flickr-like" in small_flickr.summary()

    def test_graph_is_strongly_connected(self, small_flickr):
        """The builder restricts to the largest SCC by default."""
        assert is_strongly_connected(small_flickr.graph)

    def test_every_node_has_coordinates(self, small_flickr):
        graph = small_flickr.graph
        assert graph.has_coordinates
        for u in range(graph.num_nodes):
            x, y = graph.coordinates(u)
            assert math.isfinite(x) and math.isfinite(y)

    def test_budgets_are_euclidean_distances(self, small_flickr):
        graph = small_flickr.graph
        for edge in list(graph.iter_edges())[:200]:
            ax, ay = graph.coordinates(edge.u)
            bx, by = graph.coordinates(edge.v)
            distance = max(math.hypot(ax - bx, ay - by), 1e-3)
            assert edge.budget == pytest.approx(distance)

    def test_objectives_are_log_inverse_popularity(self, small_flickr):
        """o = log(1/Pr) > 0, larger for rarer edges."""
        graph = small_flickr.graph
        objectives = [e.objective for e in graph.iter_edges()]
        assert all(o > 0 for o in objectives)
        # Popularity sums to <= 1 over edges, so log(1/Pr) >= log(num_edges)
        # for the *average* edge; just check the spread is non-trivial.
        assert max(objectives) > min(objectives)

    def test_popularity_probabilities_consistent(self, small_flickr):
        """Sum of edge probabilities Pr = Num/TotalTrips is at most 1."""
        total_probability = sum(
            math.exp(-e.objective) for e in small_flickr.graph.iter_edges()
        )
        assert total_probability <= 1.0 + 1e-6

    def test_deterministic_given_seed(self):
        config = FlickrConfig(
            photo_stream=PhotoStreamConfig(num_users=60, num_hotspots=25, seed=11)
        )
        a = build_flickr_graph(config)
        b = build_flickr_graph(config)
        assert a.graph.num_nodes == b.graph.num_nodes
        assert a.graph.num_edges == b.graph.num_edges

    def test_too_sparse_configuration_raises(self):
        config = FlickrConfig(
            photo_stream=PhotoStreamConfig(
                num_users=1, num_hotspots=2, photos_per_user=(1, 2)
            ),
            min_photos_per_location=50,
        )
        with pytest.raises(DatasetError):
            build_flickr_graph(config)
