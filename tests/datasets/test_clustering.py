"""Tests for photo clustering (repro.datasets.clustering)."""

import pytest

from repro.datasets.clustering import cluster_photos
from repro.datasets.photos import Photo


def photo(user, x, y, tags, t=0.0):
    return Photo(user_id=user, timestamp=t, x=x, y=y, tags=frozenset(tags))


class TestClustering:
    def test_nearby_photos_merge_into_one_location(self):
        photos = [
            photo(0, 0.01, 0.01, {"pub"}),
            photo(1, 0.02, 0.02, {"pub"}),
            photo(2, 5.0, 5.0, {"park"}),
        ]
        locations, mapping = cluster_photos(photos, cell_km=0.5, min_photos=1, min_tag_users=1)
        assert len(locations) == 2
        assert mapping[0] == mapping[1]
        assert mapping[2] != mapping[0]

    def test_min_photos_filters_sparse_cells(self):
        photos = [
            photo(0, 0.0, 0.0, {"a"}),
            photo(1, 0.01, 0.01, {"a"}),
            photo(2, 9.0, 9.0, {"b"}),  # alone in its cell
        ]
        locations, mapping = cluster_photos(photos, cell_km=0.5, min_photos=2, min_tag_users=1)
        assert len(locations) == 1
        assert 2 not in mapping  # dropped photo has no location

    def test_single_user_tags_removed(self):
        """The paper removes 'noisy tags, such as tags contributed by only
        one user'."""
        photos = [
            photo(0, 0.0, 0.0, {"popular", "private-tag"}),
            photo(1, 0.01, 0.0, {"popular"}),
        ]
        locations, _mapping = cluster_photos(photos, cell_km=0.5, min_photos=1, min_tag_users=2)
        assert locations[0].tags == frozenset({"popular"})

    def test_location_centroid(self):
        photos = [photo(0, 1.0, 1.0, {"a"}), photo(1, 2.0, 3.0, {"a"})]
        locations, _ = cluster_photos(photos, cell_km=10.0, min_photos=1, min_tag_users=1)
        assert locations[0].x == pytest.approx(1.5)
        assert locations[0].y == pytest.approx(2.0)

    def test_photo_count_recorded(self):
        photos = [photo(i, 0.0, 0.0, {"a"}) for i in range(5)]
        locations, _ = cluster_photos(photos, cell_km=1.0, min_photos=1, min_tag_users=1)
        assert locations[0].photo_count == 5
