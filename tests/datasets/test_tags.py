"""Tests for the Zipf tag vocabulary (repro.datasets.tags)."""

import numpy as np
import pytest

from repro.datasets.tags import TagVocabulary


class TestVocabulary:
    def test_default_size_matches_paper(self):
        assert len(TagVocabulary()) == 9785  # the paper's tag count

    def test_words_are_distinct(self):
        vocabulary = TagVocabulary(num_tags=500)
        assert len(set(vocabulary.words)) == 500

    def test_probabilities_sum_to_one(self):
        vocabulary = TagVocabulary(num_tags=100)
        assert vocabulary.probabilities.sum() == pytest.approx(1.0)

    def test_zipf_shape(self):
        """Rank-1 tag must be far more likely than rank-100."""
        vocabulary = TagVocabulary(num_tags=100, exponent=1.0)
        probs = vocabulary.probabilities
        assert probs[0] / probs[99] == pytest.approx(100.0, rel=0.01)

    def test_exponent_controls_skew(self):
        flat = TagVocabulary(num_tags=100, exponent=0.2).probabilities
        steep = TagVocabulary(num_tags=100, exponent=2.0).probabilities
        assert steep[0] > flat[0]


class TestSampling:
    def test_sample_returns_distinct_words(self):
        vocabulary = TagVocabulary(num_tags=50, seed=1)
        rng = np.random.default_rng(0)
        words = vocabulary.sample(10, rng)
        assert len(words) == 10
        assert len(set(words)) == 10

    def test_sample_one(self):
        vocabulary = TagVocabulary(num_tags=50, seed=1)
        rng = np.random.default_rng(0)
        assert vocabulary.sample_one(rng) in set(vocabulary.words)

    def test_sampling_is_skewed_towards_head(self):
        vocabulary = TagVocabulary(num_tags=1000, exponent=1.0, seed=0)
        rng = np.random.default_rng(7)
        head = set(vocabulary.words[:100])
        hits = sum(vocabulary.sample_one(rng) in head for _ in range(500))
        assert hits > 250  # head of the Zipf gets most draws

    def test_deterministic_given_seed(self):
        a = TagVocabulary(num_tags=100, seed=5)
        b = TagVocabulary(num_tags=100, seed=5)
        assert a.words == b.words
