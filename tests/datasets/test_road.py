"""Tests for the synthetic road-network generator (repro.datasets.road)."""

import math

import pytest

from repro.datasets.road import RoadConfig, build_road_graph
from repro.graph.validation import is_strongly_connected


@pytest.fixture(scope="module")
def road():
    return build_road_graph(RoadConfig(num_nodes=300, seed=5))


class TestRoadGraph:
    def test_node_count_close_to_requested(self, road):
        assert abs(road.num_nodes - 300) <= 60

    def test_strongly_connected(self, road):
        assert is_strongly_connected(road)

    def test_planar_degree_regime(self, road):
        """Road networks have small out-degree (the paper's d)."""
        max_degree = max(road.out_degree(u) for u in range(road.num_nodes))
        assert max_degree <= 8

    def test_budgets_match_geometry(self, road):
        for edge in list(road.iter_edges())[:100]:
            ax, ay = road.coordinates(edge.u)
            bx, by = road.coordinates(edge.v)
            assert edge.budget == pytest.approx(math.hypot(ax - bx, ay - by), rel=1e-6)

    def test_objectives_uniform_01(self, road):
        """The paper: 'randomly generate the objective score in (0,1)'."""
        objectives = [e.objective for e in road.iter_edges()]
        assert all(0 < o < 1 for o in objectives)
        mean = sum(objectives) / len(objectives)
        assert 0.3 < mean < 0.7

    def test_every_node_tagged(self, road):
        assert all(road.node_keywords(u) for u in range(road.num_nodes))

    def test_deterministic_given_seed(self):
        a = build_road_graph(RoadConfig(num_nodes=150, seed=2))
        b = build_road_graph(RoadConfig(num_nodes=150, seed=2))
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges

    def test_different_seeds_differ(self):
        a = build_road_graph(RoadConfig(num_nodes=150, seed=2))
        b = build_road_graph(RoadConfig(num_nodes=150, seed=3))
        assert [e.objective for e in a.iter_edges()] != [
            e.objective for e in b.iter_edges()
        ]

    def test_scales(self):
        small = build_road_graph(RoadConfig(num_nodes=100, seed=1))
        large = build_road_graph(RoadConfig(num_nodes=900, seed=1))
        assert large.num_nodes > 5 * small.num_nodes
