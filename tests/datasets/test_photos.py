"""Tests for the synthetic photo-stream generator (repro.datasets.photos)."""

import pytest

from repro.datasets.photos import DAY_SECONDS, PhotoStreamConfig, generate_photo_stream
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def stream():
    config = PhotoStreamConfig(num_users=40, num_hotspots=20, seed=3)
    return generate_photo_stream(config), config


class TestStream:
    def test_photo_counts_respect_config(self, stream):
        (photos, _hotspots, _vocab), config = stream
        lo, hi = config.photos_per_user
        assert len(photos) >= config.num_users * lo
        assert len(photos) <= config.num_users * hi

    def test_sorted_by_user_then_time(self, stream):
        (photos, _h, _v), _config = stream
        keys = [(p.user_id, p.timestamp) for p in photos]
        assert keys == sorted(keys)

    def test_photos_carry_tags(self, stream):
        (photos, _h, _v), _config = stream
        assert all(len(p.tags) >= 1 for p in photos)

    def test_photos_cluster_near_hotspots(self, stream):
        (photos, hotspots, _v), config = stream
        import math

        close = 0
        for photo in photos[:500]:
            nearest = min(
                math.hypot(photo.x - h.x, photo.y - h.y) for h in hotspots
            )
            if nearest <= 5 * config.hotspot_sigma_km:
                close += 1
        assert close >= 450  # nearly all photos hug a hotspot

    def test_session_breaks_exist(self, stream):
        (photos, _h, _v), _config = stream
        gaps = [
            b.timestamp - a.timestamp
            for a, b in zip(photos, photos[1:])
            if a.user_id == b.user_id
        ]
        assert any(gap >= DAY_SECONDS for gap in gaps)
        assert any(gap < DAY_SECONDS for gap in gaps)

    def test_deterministic_given_seed(self):
        config = PhotoStreamConfig(num_users=10, num_hotspots=8, seed=9)
        a, _, _ = generate_photo_stream(config)
        b, _, _ = generate_photo_stream(config)
        assert [(p.user_id, p.timestamp, p.x) for p in a] == [
            (p.user_id, p.timestamp, p.x) for p in b
        ]

    def test_invalid_config_rejected(self):
        with pytest.raises(DatasetError):
            generate_photo_stream(PhotoStreamConfig(num_users=0))
        with pytest.raises(DatasetError):
            generate_photo_stream(PhotoStreamConfig(num_hotspots=1))
