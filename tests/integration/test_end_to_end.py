"""End-to-end integration: datasets -> engine/service -> every algorithm.

The pipeline tests run through *both* front doors — the bare
``KOREngine`` and the batched/cached ``QueryService`` — via the
``run_kor`` fixture, so the serving layer is exercised on the same
realistic workloads as the engine it wraps.
"""

import pytest

from repro.core.query import KORQuery
from repro.datasets.queries import QuerySetConfig, generate_query_set
from repro.service import QueryService


@pytest.fixture(scope="module")
def query_battery(small_flickr_engine):
    config = QuerySetConfig(num_queries=6, num_keywords=3, budget_limit=4.0, seed=13)
    return generate_query_set(
        small_flickr_engine.graph,
        small_flickr_engine.index,
        config,
        tables=small_flickr_engine.tables,
    )


@pytest.fixture(params=["engine", "service"])
def run_kor(request, small_flickr_engine, small_flickr_service):
    """One KOR call, through the engine or through the serving layer."""
    if request.param == "engine":
        return small_flickr_engine.run
    return small_flickr_service.submit


class TestFlickrPipeline:
    def test_all_algorithms_run_on_generated_queries(self, small_flickr_engine, run_kor, query_battery):
        for query in query_battery:
            for algorithm in ("osscaling", "bucketbound", "greedy", "greedy2"):
                result = run_kor(query, algorithm=algorithm)
                if result.feasible:
                    assert result.route.covers(small_flickr_engine.graph, query.keywords)
                    assert result.route.budget_score <= query.budget_limit + 1e-9
                    assert result.route.source == query.source
                    assert result.route.target == query.target

    def test_approximations_agree_on_feasibility(self, run_kor, query_battery):
        for query in query_battery:
            oss = run_kor(query, algorithm="osscaling")
            bb = run_kor(query, algorithm="bucketbound")
            assert oss.feasible == bb.feasible

    def test_bucketbound_within_beta_of_osscaling(self, run_kor, query_battery):
        for query in query_battery:
            oss = run_kor(query, algorithm="osscaling", epsilon=0.5)
            bb = run_kor(query, algorithm="bucketbound", epsilon=0.5, beta=1.2)
            if oss.feasible:
                assert bb.route.objective_score <= oss.route.objective_score * 1.2 + 1e-6

    def test_topk_first_route_matches_top1(self, small_flickr_engine, run_kor, query_battery):
        for query in query_battery[:3]:
            top1 = run_kor(query, algorithm="osscaling")
            topk = small_flickr_engine.top_k(
                query.source, query.target, query.keywords, query.budget_limit,
                k=3, algorithm="osscaling",
            )
            assert top1.feasible == bool(topk.routes)
            if top1.feasible:
                assert topk.routes[0].objective_score <= top1.route.objective_score + 1e-9


class TestServicePipeline:
    def test_batched_serving_matches_engine_on_battery(
        self, small_flickr_engine, small_flickr_service, query_battery
    ):
        for algorithm in ("osscaling", "bucketbound"):
            batch = small_flickr_service.run_batch(
                query_battery, algorithm=algorithm, workers=4
            )
            for query, served in zip(query_battery, batch):
                direct = small_flickr_engine.run(query, algorithm=algorithm)
                assert served.feasible == direct.feasible
                if direct.feasible:
                    assert served.route.objective_score == pytest.approx(
                        direct.route.objective_score
                    )
                    assert served.route.budget_score == pytest.approx(
                        direct.route.budget_score
                    )

    def test_serving_metrics_flow_end_to_end(self, small_flickr_engine, query_battery):
        service = QueryService(small_flickr_engine, cache_capacity=128)
        service.run_batch(query_battery, algorithm="bucketbound", workers=2)
        service.run_batch(query_battery, algorithm="bucketbound", workers=2)
        snapshot = service.snapshot()
        assert snapshot.queries == 2 * len(query_battery)
        assert snapshot.cache_hits >= len(query_battery)  # whole second pass
        assert snapshot.p95_latency_seconds >= snapshot.p50_latency_seconds
        assert snapshot.throughput_qps > 0


class TestRoadPipeline:
    def test_road_graph_end_to_end(self):
        from repro.core.engine import KOREngine
        from repro.datasets.road import RoadConfig, build_road_graph

        graph = build_road_graph(RoadConfig(num_nodes=150, seed=9))
        engine = KOREngine(graph)
        config = QuerySetConfig(num_queries=4, num_keywords=2, budget_limit=8.0, seed=5)
        queries = generate_query_set(graph, engine.index, config, tables=engine.tables)
        feasible = 0
        for query in queries:
            result = engine.run(query, algorithm="bucketbound")
            feasible += result.feasible
            if result.feasible:
                assert result.route.covers(graph, query.keywords)
        assert feasible >= 1  # the screen makes most queries solvable

    def test_road_graph_served_end_to_end(self):
        from repro.core.engine import KOREngine
        from repro.datasets.road import RoadConfig, build_road_graph

        graph = build_road_graph(RoadConfig(num_nodes=150, seed=9))
        service = QueryService(KOREngine(graph), cache_capacity=64)
        config = QuerySetConfig(num_queries=4, num_keywords=2, budget_limit=8.0, seed=5)
        queries = generate_query_set(
            graph, service.engine.index, config, tables=service.engine.tables
        )
        batch = service.run_batch(queries, algorithm="bucketbound", workers=3)
        feasible = sum(result.feasible for result in batch)
        for query, result in zip(queries, batch):
            if result.feasible:
                assert result.route.covers(graph, query.keywords)
        assert feasible >= 1


class TestPrebuiltComponentsMatchFreshOnes:
    def test_saved_and_loaded_tables_give_same_answers(self, small_flickr_engine, tmp_path):
        from repro.core.engine import KOREngine
        from repro.prep.tables import CostTables

        path = tmp_path / "tables.npz"
        small_flickr_engine.tables.save(path)
        loaded_engine = KOREngine(small_flickr_engine.graph, tables=CostTables.load(path))
        query = KORQuery(0, small_flickr_engine.graph.num_nodes - 1, (), 6.0)
        fresh = small_flickr_engine.run(query, algorithm="osscaling")
        reloaded = loaded_engine.run(query, algorithm="osscaling")
        assert fresh.feasible == reloaded.feasible
        if fresh.feasible:
            assert fresh.route.objective_score == pytest.approx(
                reloaded.route.objective_score
            )
