"""End-to-end integration: datasets -> engine -> every algorithm."""

import pytest

from repro.core.query import KORQuery
from repro.datasets.queries import QuerySetConfig, generate_query_set


@pytest.fixture(scope="module")
def query_battery(small_flickr_engine):
    config = QuerySetConfig(num_queries=6, num_keywords=3, budget_limit=4.0, seed=13)
    return generate_query_set(
        small_flickr_engine.graph,
        small_flickr_engine.index,
        config,
        tables=small_flickr_engine.tables,
    )


class TestFlickrPipeline:
    def test_all_algorithms_run_on_generated_queries(self, small_flickr_engine, query_battery):
        for query in query_battery:
            for algorithm in ("osscaling", "bucketbound", "greedy", "greedy2"):
                result = small_flickr_engine.run(query, algorithm=algorithm)
                if result.feasible:
                    assert result.route.covers(small_flickr_engine.graph, query.keywords)
                    assert result.route.budget_score <= query.budget_limit + 1e-9
                    assert result.route.source == query.source
                    assert result.route.target == query.target

    def test_approximations_agree_on_feasibility(self, small_flickr_engine, query_battery):
        for query in query_battery:
            oss = small_flickr_engine.run(query, algorithm="osscaling")
            bb = small_flickr_engine.run(query, algorithm="bucketbound")
            assert oss.feasible == bb.feasible

    def test_bucketbound_within_beta_of_osscaling(self, small_flickr_engine, query_battery):
        for query in query_battery:
            oss = small_flickr_engine.run(query, algorithm="osscaling", epsilon=0.5)
            bb = small_flickr_engine.run(query, algorithm="bucketbound", epsilon=0.5, beta=1.2)
            if oss.feasible:
                assert bb.route.objective_score <= oss.route.objective_score * 1.2 + 1e-6

    def test_topk_first_route_matches_top1(self, small_flickr_engine, query_battery):
        for query in query_battery[:3]:
            top1 = small_flickr_engine.run(query, algorithm="osscaling")
            topk = small_flickr_engine.top_k(
                query.source, query.target, query.keywords, query.budget_limit,
                k=3, algorithm="osscaling",
            )
            assert top1.feasible == bool(topk.routes)
            if top1.feasible:
                assert topk.routes[0].objective_score <= top1.route.objective_score + 1e-9


class TestRoadPipeline:
    def test_road_graph_end_to_end(self):
        from repro.core.engine import KOREngine
        from repro.datasets.road import RoadConfig, build_road_graph

        graph = build_road_graph(RoadConfig(num_nodes=150, seed=9))
        engine = KOREngine(graph)
        config = QuerySetConfig(num_queries=4, num_keywords=2, budget_limit=8.0, seed=5)
        queries = generate_query_set(graph, engine.index, config, tables=engine.tables)
        feasible = 0
        for query in queries:
            result = engine.run(query, algorithm="bucketbound")
            feasible += result.feasible
            if result.feasible:
                assert result.route.covers(graph, query.keywords)
        assert feasible >= 1  # the screen makes most queries solvable


class TestPrebuiltComponentsMatchFreshOnes:
    def test_saved_and_loaded_tables_give_same_answers(self, small_flickr_engine, tmp_path):
        from repro.core.engine import KOREngine
        from repro.prep.tables import CostTables

        path = tmp_path / "tables.npz"
        small_flickr_engine.tables.save(path)
        loaded_engine = KOREngine(small_flickr_engine.graph, tables=CostTables.load(path))
        query = KORQuery(0, small_flickr_engine.graph.num_nodes - 1, (), 6.0)
        fresh = small_flickr_engine.run(query, algorithm="osscaling")
        reloaded = loaded_engine.run(query, algorithm="osscaling")
        assert fresh.feasible == reloaded.feasible
        if fresh.feasible:
            assert fresh.route.objective_score == pytest.approx(
                reloaded.route.objective_score
            )
