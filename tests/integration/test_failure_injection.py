"""Failure injection across module boundaries.

Exercises the unhappy paths the paper never mentions but a production
system must survive: corrupted storage, impossible queries, degenerate
graphs and mismatched components.
"""

import numpy as np
import pytest

from repro.core.engine import KOREngine
from repro.exceptions import QueryError, StorageError
from repro.graph.generators import figure_1_graph, line_graph


class TestImpossibleQueries:
    def test_unknown_keyword(self, fig1_engine):
        result = fig1_engine.query(0, 7, ["nonexistent"], 10.0)
        assert not result.feasible
        assert "not present" in result.failure_reason

    def test_budget_below_cheapest_path(self, fig1_engine):
        result = fig1_engine.query(0, 7, ["t1"], 1.0)
        assert not result.feasible
        assert "exceeds the limit" in result.failure_reason

    def test_unreachable_target(self, fig1_engine):
        result = fig1_engine.query(7, 0, ["t1"], 100.0)
        assert not result.feasible
        assert "unreachable" in result.failure_reason

    def test_out_of_range_nodes(self, fig1_engine):
        with pytest.raises(QueryError):
            fig1_engine.query(-1, 7, ["t1"], 10.0)
        with pytest.raises(QueryError):
            fig1_engine.query(0, 99, ["t1"], 10.0)

    def test_every_algorithm_survives_impossible_queries(self, fig1_engine):
        for algorithm in ("osscaling", "bucketbound", "greedy", "greedy2", "exact"):
            result = fig1_engine.query(0, 7, ["nonexistent"], 10.0, algorithm=algorithm)
            assert not result.feasible


class TestCorruptedStorage:
    def test_corrupt_page_surfaces_as_storage_error(self, tmp_path):
        from repro.index.diskindex import DiskInvertedIndex

        graph = figure_1_graph()
        path = tmp_path / "index.pages"
        index = DiskInvertedIndex.build(graph, path, buffer_capacity=2)
        # Reach under the hood and corrupt a data page, then force the
        # buffer pool to re-read it from disk.
        store = index.buffer_pool.store
        index.flush()
        for page_id in range(1, store.num_pages):
            store.corrupt_page_for_testing(page_id)
        with pytest.raises(StorageError, match="checksum"):
            for kid in range(len(graph.keyword_table)):
                # Drain through enough lookups to force disk reads.
                for _ in range(8):
                    index.postings(kid)
        index.close()

    def test_truncated_tables_archive(self, tmp_path):
        from repro.exceptions import PrepError
        from repro.prep.tables import CostTables

        path = tmp_path / "tables.npz"
        np.savez(path, os_tau=np.zeros((2, 2)), bs_tau=np.zeros((2, 2)))
        with pytest.raises(PrepError, match="misses arrays"):
            CostTables.load(path)


class TestDegenerateGraphs:
    def test_two_node_graph(self):
        graph = line_graph(2, keywords=[["a"], ["b"]])
        engine = KOREngine(graph)
        result = engine.query(0, 1, ["a", "b"], 2.0)
        assert result.feasible
        assert result.route.nodes == (0, 1)

    def test_single_edge_budget_exactly_at_limit(self):
        graph = line_graph(2, keywords=[[], ["k"]], budget=5.0)
        engine = KOREngine(graph)
        # Definition 4 uses BS <= Delta: a route costing exactly Delta fits.
        assert engine.query(0, 1, ["k"], 5.0).feasible
        assert not engine.query(0, 1, ["k"], 4.999).feasible

    def test_query_with_all_keywords_on_source_and_target(self):
        graph = line_graph(3, keywords=[["a"], [], ["b"]])
        engine = KOREngine(graph)
        result = engine.query(0, 2, ["a", "b"], 2.0)
        assert result.feasible
        assert result.route.objective_score == 2.0


class TestComponentMismatch:
    def test_tables_from_wrong_graph_detected_by_size(self, fig1_engine):
        from repro.prep.tables import CostTables

        small = CostTables.from_graph(line_graph(2))
        engine = KOREngine(figure_1_graph(), tables=small)
        with pytest.raises(Exception):
            engine.query(0, 7, ["t1"], 10.0)
