"""The disk-resident index must be a drop-in for the in-memory one."""

import pytest

from repro.core.engine import KOREngine
from repro.core.query import KORQuery
from repro.index.diskindex import DiskInvertedIndex


class TestQueryEquivalence:
    @pytest.fixture(scope="class")
    def disk_engine(self, small_flickr, small_flickr_engine, tmp_path_factory):
        path = tmp_path_factory.mktemp("disk") / "index.pages"
        disk_index = DiskInvertedIndex.build(small_flickr.graph, path)
        engine = KOREngine(
            small_flickr.graph,
            tables=small_flickr_engine.tables,  # share the expensive part
            index=disk_index,
        )
        yield engine
        disk_index.close()

    def test_same_results_under_both_backends(self, small_flickr_engine, disk_engine):
        graph = small_flickr_engine.graph
        words = sorted(graph.keyword_table.words)[:4]
        query = KORQuery(0, graph.num_nodes - 1, tuple(words[:2]), 5.0)
        for algorithm in ("osscaling", "bucketbound", "greedy"):
            memory_result = small_flickr_engine.run(query, algorithm=algorithm)
            disk_result = disk_engine.run(query, algorithm=algorithm)
            assert memory_result.feasible == disk_result.feasible
            if memory_result.feasible:
                assert memory_result.route.objective_score == pytest.approx(
                    disk_result.route.objective_score
                )

    def test_same_infeasibility_reason(self, small_flickr_engine, disk_engine):
        query = KORQuery(0, 1, ("keyword-that-does-not-exist",), 5.0)
        memory_result = small_flickr_engine.run(query, algorithm="osscaling")
        disk_result = disk_engine.run(query, algorithm="osscaling")
        assert not memory_result.feasible and not disk_result.feasible
        assert memory_result.failure_reason == disk_result.failure_reason
