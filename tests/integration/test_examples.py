"""The shipped examples must run end to end (fast ones only)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "most popular route" in output
        assert "hotel" in output

    def test_custom_graph_and_disk_index(self):
        output = run_example("custom_graph_and_disk_index.py")
        assert "persisted and reloaded" in output
        assert "round trip from the station" in output

    def test_topk_route_search(self):
        output = run_example("topk_route_search.py")
        assert "#1: OS=4.00" in output  # Figure-1 optimum leads the list
        assert "bucketbound top-3" in output

    def test_async_demo(self):
        output = run_example("async_demo.py")
        assert "async front-end" in output
        assert "execute wave(s)" in output
        assert "coalesced" in output
        assert "impatient client timed out" in output
        assert "sharded async burst" in output
