"""The documented top-level API surface must work as advertised."""

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart_flow(self):
        graph = repro.figure_1_graph()
        engine = repro.KOREngine(graph)
        result = engine.query(
            source=0, target=7, keywords=["t1", "t2", "t3"],
            budget_limit=8.0, algorithm="osscaling",
        )
        assert "v0 -> v3 -> v4 -> v7" in result.route.describe(graph)

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])

    def test_exception_hierarchy(self):
        for exc in (
            repro.GraphError,
            repro.QueryError,
            repro.PrepError,
            repro.StorageError,
            repro.DatasetError,
        ):
            assert issubclass(exc, repro.ReproError)

    def test_functional_entry_points_share_results(self, fig1_engine):
        """Direct function calls match the engine facade."""
        query = repro.KORQuery(0, 7, ("t1", "t2"), 10.0)
        direct = repro.os_scaling(
            fig1_engine.graph, fig1_engine.tables, fig1_engine.index, query
        )
        via_engine = fig1_engine.run(query, algorithm="osscaling")
        assert direct.route.nodes == via_engine.route.nodes

    def test_docstrings_on_public_api(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__" and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert undocumented == []
