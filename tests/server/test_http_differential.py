"""End-to-end: the HTTP front door vs direct ``AsyncQueryService`` calls.

The acceptance bar for the network tier: results served over HTTP (real
sockets through the stdlib bridge, and the raw ASGI callable) must be
**byte-identical** to what a direct in-process ``AsyncQueryService``
awaiter gets, for all six algorithms — the transport adds nothing and
loses nothing.  Plus the rest of the surface: batch, streaming top-k,
stats/endpoint counters, tune, and the error mapping.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.engine import ALGORITHMS
from repro.server import (
    KORApp,
    asgi_request,
    decode_route_result,
    encode_route_result,
    http_request,
    serve,
)
from repro.service import AsyncQueryService, QueryService, build_service
from repro.world import MutableWorld

from tests.service.test_differential import fingerprint, random_instance
from tests.service.test_frontend import SlowEngine


def canonical_bytes(document: dict) -> bytes:
    """Key-order-independent byte form of one wire document."""
    return json.dumps(document, sort_keys=True, allow_nan=False).encode()


def query_payload(query, algorithm: str) -> dict:
    return {
        "source": query.source,
        "target": query.target,
        "keywords": list(query.keywords),
        "budget_limit": query.budget_limit,
        "algorithm": algorithm,
    }


@pytest.fixture(scope="module")
def instance():
    return random_instance(0)


@pytest.fixture(scope="module")
def server(instance):
    engine, _queries = instance
    server = serve(QueryService(engine, cache_capacity=256))
    yield server
    server.close()


def over_http(server, method, path, payload=None):
    host, port = server.address
    return asyncio.run(http_request(host, port, method, path, payload))


class TestHTTPDifferential:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_http_results_byte_identical_to_direct_frontend(
        self, algorithm, instance, server
    ):
        """Acceptance: socket HTTP == direct AsyncQueryService, byte for
        byte on the wire encoding, for all six algorithms."""
        engine, queries = instance

        async def direct():
            async with AsyncQueryService(QueryService(engine, cache_capacity=256)) as front:
                return [
                    await front.submit(query, algorithm=algorithm) for query in queries
                ]

        # The server stamps every result with the graph epoch it served
        # under (0 here: the module fixture never mutates); the direct
        # encoding must carry the same stamp to stay byte-identical.
        expected = [
            canonical_bytes(encode_route_result(r, epoch=0))
            for r in asyncio.run(direct())
        ]
        got = []
        for query in queries:
            response = over_http(server, "POST", "/query", query_payload(query, algorithm))
            assert response.status == 200, response.body
            got.append(canonical_bytes(response.json()))
        assert got == expected

    def test_asgi_inproc_matches_engine(self, instance):
        """The raw ASGI callable (no sockets) stays differential too."""
        engine, queries = instance

        async def drive():
            front = AsyncQueryService(QueryService(engine, cache_capacity=256))
            app = KORApp(front)
            try:
                out = []
                for algorithm in ALGORITHMS:
                    response = await asgi_request(
                        app, "POST", "/query", query_payload(queries[1], algorithm)
                    )
                    assert response.status == 200, response.body
                    out.append((algorithm, decode_route_result(response.json())))
                return out
            finally:
                await front.close()

        for algorithm, decoded in asyncio.run(drive()):
            assert fingerprint(decoded) == fingerprint(
                engine.run(queries[1], algorithm=algorithm)
            )

    def test_batch_endpoint_matches_per_query_answers(self, instance, server):
        engine, queries = instance
        response = over_http(
            server,
            "POST",
            "/batch",
            {
                "queries": [query_payload(q, "greedy") for q in queries],
                "algorithm": "greedy",
            },
        )
        assert response.status == 200
        envelope = response.json()
        assert envelope["schema"] == "kor.route_batch.v1"
        assert envelope["count"] == len(queries)
        for query, slot in zip(queries, envelope["results"]):
            assert "error" not in slot
            assert fingerprint(decode_route_result(slot)) == fingerprint(
                engine.run(query, algorithm="greedy")
            )

    def test_batch_isolates_per_slot_errors(self, instance, server):
        engine, queries = instance
        bad = {
            "source": engine.graph.num_nodes + 9, "target": 0,
            "keywords": [], "budget_limit": 4.0,
        }
        response = over_http(
            server,
            "POST",
            "/batch",
            {"queries": [query_payload(queries[0], "bucketbound"), bad]},
        )
        assert response.status == 200
        good_slot, bad_slot = response.json()["results"]
        assert "error" not in good_slot
        assert bad_slot["error"]["type"] == "QueryError"


class TestStreamingTopK:
    def test_topk_stream_matches_engine_over_chunked_http(self, instance, server):
        engine, queries = instance
        query = queries[0]
        expected = engine.top_k(
            query.source, query.target, query.keywords, query.budget_limit, 3,
            algorithm="bucketbound",
        )
        response = over_http(
            server,
            "POST",
            "/topk/stream",
            {**query_payload(query, "bucketbound"), "k": 3},
        )
        assert response.status == 200
        assert response.headers.get("transfer-encoding", "").lower() == "chunked"
        header, *lines = response.ndjson()
        assert header["schema"] == "kor.route_topk.v1"
        assert header["count"] == len(expected.routes) == len(lines)
        for rank, (line, route) in enumerate(zip(lines, expected.routes), start=1):
            assert line["rank"] == rank
            assert tuple(line["nodes"]) == route.nodes
            assert line["score"]["objective"] == pytest.approx(route.objective_score)
            assert line["score"]["budget"] == pytest.approx(route.budget_score)

    def test_topk_rejects_bad_k_and_bad_algorithm(self, instance, server):
        _engine, queries = instance
        payload = query_payload(queries[0], "bucketbound")
        assert over_http(server, "POST", "/topk/stream", {**payload, "k": 0}).status == 400
        # exact is a valid KOR algorithm but not a top-k one: still a 400.
        response = over_http(
            server, "POST", "/topk/stream", {**payload, "algorithm": "exact", "k": 2}
        )
        assert response.status == 400


class TestOperationalSurface:
    def test_healthz_lists_endpoints(self, server):
        response = over_http(server, "GET", "/healthz")
        assert response.status == 200
        assert "/query" in response.json()["endpoints"]

    def test_stats_reports_endpoint_counters(self, instance, server):
        _engine, queries = instance
        over_http(server, "POST", "/query", query_payload(queries[0], "bucketbound"))
        response = over_http(server, "GET", "/stats")
        assert response.status == 200
        payload = response.json()
        assert payload["schema"] == "kor.service_stats.v1"
        assert payload["frontend"]["endpoints"]["/query"]["requests"] >= 1
        assert "window_seconds" in payload["scheduling"]
        assert payload["service"]["queries"] >= 1

    def test_error_mapping(self, server):
        assert over_http(server, "GET", "/no-such-endpoint").status == 404
        assert over_http(server, "GET", "/query").status == 405
        malformed = over_http(server, "POST", "/query", {"source": 0})
        assert malformed.status == 400
        assert malformed.json()["error"]["type"] == "WireError"
        unknown = over_http(
            server,
            "POST",
            "/query",
            {"source": 0, "target": 1, "keywords": [], "budget_limit": 2.0,
             "algorithm": "dijkstra"},
        )
        assert unknown.status == 400
        # Bad requests are counted as endpoint errors in the stats.
        stats = over_http(server, "GET", "/stats").json()
        assert stats["frontend"]["endpoints"]["/query"]["errors"] >= 2

    def test_request_timeout_maps_to_504(self, instance):
        engine, queries = instance
        server = serve(QueryService(SlowEngine(engine, delay_seconds=0.5), cache_capacity=0))
        try:
            response = over_http(
                server,
                "POST",
                "/query",
                {**query_payload(queries[0], "bucketbound"), "timeout": 0.01},
            )
            assert response.status == 504
        finally:
            server.close()

    def test_tune_adjusts_adaptive_window(self, instance):
        engine, _queries = instance
        server = serve(
            QueryService(engine, cache_capacity=16),
            adaptive_target_batch=8,
            max_window_seconds=0.05,
        )
        try:
            response = over_http(server, "POST", "/tune", {"arrival_qps": 1000.0})
            assert response.status == 200
            payload = response.json()
            assert payload["adaptive"] is True
            assert payload["window_seconds"] == pytest.approx(0.008)
        finally:
            server.close()


class TestAdminUpdate:
    """``/admin/update`` (ISSUE 9): live mutation through the front door."""

    def _fresh(self):
        engine, queries = random_instance(0)
        world = MutableWorld(engine.graph, num_cells=2)
        front = build_service(world, tier="async")
        return KORApp(front), world, queries

    def test_update_acks_with_the_new_epoch_and_serving_follows(self):
        app, world, queries = self._fresh()
        payload = query_payload(queries[0], "exact")

        async def drive():
            before = await asgi_request(app, "POST", "/query", payload)
            ack = await asgi_request(
                app,
                "POST",
                "/admin/update",
                {
                    "schema": "kor.graph_update.v1",
                    "ops": [{"op": "update_keywords", "node": 0,
                             "keywords": ["pub", "mall"]}],
                },
            )
            after = await asgi_request(app, "POST", "/query", payload)
            health = await asgi_request(app, "GET", "/healthz")
            stats = await asgi_request(app, "GET", "/stats")
            await app.frontend.close()
            return before, ack, after, health, stats

        before, ack, after, health, stats = asyncio.run(drive())
        assert ack.status == 200
        body = ack.json()
        assert body["schema"] == "kor.graph_update_ack.v1"
        assert body == {"schema": "kor.graph_update_ack.v1", "epoch": 1, "applied": 1}
        # Every result is stamped with the epoch it was served under.
        assert before.json()["epoch"] == 0
        assert after.json()["epoch"] == 1
        # The operational surface reports the same epoch.
        assert health.json()["epoch"] == 1
        assert stats.json()["epoch"] == 1
        assert world.epoch == 1

    def test_post_update_results_match_a_rebuilt_world(self):
        app, world, queries = self._fresh()
        u, v = next(
            (u, v)
            for u in range(world.graph.num_nodes)
            for v, _o, _b in world.graph.out_edges(u)
        )

        async def drive():
            ack = await asgi_request(
                app,
                "POST",
                "/admin/update",
                {"ops": [{"op": "update_edge_cost", "u": u, "v": v,
                          "objective": 9.0, "budget": 9.0}]},
            )
            answers = [
                await asgi_request(app, "POST", "/query", query_payload(q, "exact"))
                for q in queries
            ]
            await app.frontend.close()
            return ack, answers

        ack, answers = asyncio.run(drive())
        assert ack.status == 200
        from repro.service import ShardedQueryService

        oracle = ShardedQueryService(world=world.rebuilt())
        try:
            for query, response in zip(queries, answers):
                assert response.status == 200
                expected = oracle.run_batch([query], algorithm="exact")[0]
                assert fingerprint(decode_route_result(response.json())) == fingerprint(
                    expected
                )
        finally:
            oracle.close()

    def test_error_mapping_for_updates(self):
        app, world, _queries = self._fresh()

        async def drive():
            malformed = await asgi_request(
                app, "POST", "/admin/update", {"ops": [{"op": "set_on_fire"}]}
            )
            semantic = await asgi_request(
                app,
                "POST",
                "/admin/update",
                {"ops": [{"op": "open_node", "node": 0}]},  # not closed
            )
            await app.frontend.close()
            return malformed, semantic

        malformed, semantic = asyncio.run(drive())
        assert malformed.status == 400
        assert malformed.json()["error"]["type"] == "WireError"
        assert semantic.status == 400
        assert semantic.json()["error"]["type"] == "MutationError"
        assert world.epoch == 0  # nothing was applied

    def test_updates_pass_while_the_app_drains(self):
        """Operators must be able to push updates during drain: the
        endpoint is deliberately outside the work-admission budget."""
        app, world, queries = self._fresh()
        app.begin_drain()

        async def drive():
            refused = await asgi_request(
                app, "POST", "/query", query_payload(queries[0], "exact")
            )
            accepted = await asgi_request(
                app,
                "POST",
                "/admin/update",
                {"ops": [{"op": "update_keywords", "node": 1, "keywords": []}]},
            )
            await app.frontend.close()
            return refused, accepted

        refused, accepted = asyncio.run(drive())
        assert refused.status == 503
        assert accepted.status == 200
        assert accepted.json()["epoch"] == world.epoch == 1

    def test_frontend_without_mutation_support_maps_to_400(self):
        """A front over a service with no ``apply_ops`` answers 400,
        not 500 — the transport stays honest about capability."""
        engine, _queries = random_instance(1)

        class NoMutation:
            """Delegating proxy that hides the mutation API."""

            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name in ("apply_ops", "epoch"):
                    raise AttributeError(name)
                return getattr(self._inner, name)

        async def drive():
            async with AsyncQueryService(NoMutation(QueryService(engine))) as front:
                app = KORApp(front)
                response = await asgi_request(
                    app,
                    "POST",
                    "/admin/update",
                    {"ops": [{"op": "close_node", "node": 0}]},
                )
                health = await asgi_request(app, "GET", "/healthz")
                return response, health

        response, health = asyncio.run(drive())
        assert response.status == 400
        assert response.json()["error"]["type"] == "QueryError"
        # No epoch to report either — the field stays additive.
        assert "epoch" not in health.json()
