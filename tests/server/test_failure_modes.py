"""The front door under failure: deadlines, shedding, draining, health.

Drives :class:`~repro.server.app.KORApp` through the in-process ASGI
client (and :class:`~repro.server.stdlib.StdlibServer` for the drain
protocol) and pins the failure-containment contract of the HTTP tier:

* a request whose deadline expires answers **504** promptly — whether
  the deadline came as ``timeout``, ``timeout_ms`` or the
  ``x-kor-timeout-ms`` header — and the body form wins over the header;
* requests beyond the pending budget are **shed** with 503 +
  ``Retry-After`` before any engine work, counted in ``shed``;
* :meth:`~repro.server.app.KORApp.begin_drain` refuses new work while
  ``/healthz`` reports ``draining`` and read endpoints stay up;
* ``/healthz`` reports ``degraded`` while a lane breaker is open.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.server import KORApp, asgi_request, http_request, serve
from repro.service import AsyncQueryService, QueryService

from tests.service.test_differential import random_instance
from tests.service.test_frontend import SlowEngine

pytestmark = pytest.mark.timeout(120)


def query_payload(query, **extra) -> dict:
    return {
        "source": query.source,
        "target": query.target,
        "keywords": list(query.keywords),
        "budget_limit": query.budget_limit,
        **extra,
    }


def drive(coro_factory, engine, **front_kwargs):
    """Run *coro_factory(app)* against a fresh app over *engine*."""
    max_pending = front_kwargs.pop("max_pending", None)

    async def main():
        front = AsyncQueryService(QueryService(engine, cache_capacity=0), **front_kwargs)
        app_kwargs = {} if max_pending is None else {"max_pending": max_pending}
        app = KORApp(front, **app_kwargs)
        try:
            return await coro_factory(app)
        finally:
            await front.close()

    return asyncio.run(main())


async def request_with_headers(app, payload: dict, headers: list) -> "object":
    """Like ``asgi_request`` but with caller-controlled headers."""
    import json

    body = json.dumps(payload).encode()
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": "POST",
        "scheme": "http",
        "path": "/query",
        "raw_path": b"/query",
        "query_string": b"",
        "root_path": "",
        "headers": [(b"content-type", b"application/json")] + headers,
        "client": ("127.0.0.1", 0),
        "server": ("inproc", 0),
    }
    delivered = False

    async def receive():
        nonlocal delivered
        if not delivered:
            delivered = True
            return {"type": "http.request", "body": body, "more_body": False}
        return await asyncio.get_running_loop().create_future()

    messages = []

    async def send(message):
        messages.append(message)

    await app(scope, receive, send)
    status = messages[0]["status"]
    payload_bytes = b"".join(m.get("body", b"") for m in messages[1:])
    return status, json.loads(payload_bytes or b"null")


class TestDeadlines:
    def test_expired_deadline_answers_504_promptly(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.3)

        async def scenario(app):
            begin = time.monotonic()
            response = await asgi_request(
                app, "POST", "/query", query_payload(queries[0], timeout=0.05)
            )
            elapsed = time.monotonic() - begin
            assert response.status == 504
            assert response.json()["error"]["type"] in (
                "TimeoutError",
                "DeadlineExceeded",
            )
            # Promptness: well under the engine's 0.3 s stall.
            assert elapsed < 2.0

        drive(scenario, slow)

    def test_timeout_ms_is_the_same_deadline(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.3)

        async def scenario(app):
            response = await asgi_request(
                app, "POST", "/query", query_payload(queries[0], timeout_ms=50)
            )
            assert response.status == 504

        drive(scenario, slow)

    def test_timeout_and_timeout_ms_together_are_rejected(self):
        engine, queries = random_instance(0)

        async def scenario(app):
            response = await asgi_request(
                app,
                "POST",
                "/query",
                query_payload(queries[0], timeout=1.0, timeout_ms=1000),
            )
            assert response.status == 400
            assert "not both" in response.json()["error"]["message"]

        drive(scenario, engine)

    def test_header_deadline_applies_when_body_has_none(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.3)

        async def scenario(app):
            status, payload = await request_with_headers(
                app, query_payload(queries[0]), [(b"x-kor-timeout-ms", b"50")]
            )
            assert status == 504

        drive(scenario, slow)

    def test_body_timeout_wins_over_the_header(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.1)

        async def scenario(app):
            status, payload = await request_with_headers(
                app,
                query_payload(queries[0], timeout=30.0),
                [(b"x-kor-timeout-ms", b"1")],
            )
            assert status == 200  # a winning 1 ms header would be a 504

        drive(scenario, slow)

    def test_malformed_header_is_a_400(self):
        engine, queries = random_instance(0)

        async def scenario(app):
            for bad in (b"soon", b"-5", b"0"):
                status, payload = await request_with_headers(
                    app, query_payload(queries[0]), [(b"x-kor-timeout-ms", bad)]
                )
                assert status == 400
                assert "x-kor-timeout-ms" in payload["error"]["message"]

        drive(scenario, engine)

    def test_mid_search_expiry_stops_the_engine_with_a_504(self):
        """The deadline reaches the search loop: an exhaustive search
        that would run for seconds answers 504 within the deadline plus
        scheduling slack."""
        from repro.core.engine import KOREngine
        from repro.core.query import KORQuery
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_node(keywords=["rare"])
        for _ in range(6):
            builder.add_node()
        for u in range(7):
            for v in range(7):
                if u != v:
                    builder.add_edge(u, v, 1.0, 1.0)
        engine = KOREngine(builder.build())
        query = KORQuery(1, 2, ("rare",), 9.0)

        async def scenario(app):
            begin = time.monotonic()
            response = await asgi_request(
                app,
                "POST",
                "/query",
                query_payload(query, timeout_ms=50, algorithm="exhaustive"),
            )
            elapsed = time.monotonic() - begin
            assert response.status == 504
            assert elapsed < 2.0

        drive(scenario, engine)

    def test_batch_slots_time_out_individually(self):
        engine, queries = random_instance(0)
        slow = SlowEngine(engine, delay_seconds=0.3)

        async def scenario(app):
            response = await asgi_request(
                app,
                "POST",
                "/batch",
                {
                    "timeout": 0.05,
                    "queries": [query_payload(q) for q in queries[:2]],
                },
            )
            assert response.status == 200  # the envelope survives
            results = response.json()["results"]
            assert len(results) == 2
            assert all("error" in item for item in results)

        drive(scenario, slow)


class TestShedding:
    def test_over_budget_requests_are_shed(self):
        engine, queries = random_instance(1)
        slow = SlowEngine(engine, delay_seconds=0.2)

        async def scenario(app):
            first = asyncio.ensure_future(
                asgi_request(app, "POST", "/query", query_payload(queries[0]))
            )
            await asyncio.sleep(0.05)  # let it be admitted
            assert app.pending == 1
            second = await asgi_request(
                app, "POST", "/query", query_payload(queries[1])
            )
            assert second.status == 503
            assert second.headers.get("retry-after") == "1"
            assert second.json()["error"]["type"] == "Overloaded"

            health = (await asgi_request(app, "GET", "/healthz")).json()
            assert health["shed"] == 1
            assert health["max_pending"] == 1
            assert health["status"] == "ok"  # shedding is not degradation

            assert (await first).status == 200
            assert app.frontend.snapshot().shed == 1

        drive(scenario, slow, max_pending=1)

    def test_read_endpoints_are_never_shed(self):
        engine, queries = random_instance(1)
        slow = SlowEngine(engine, delay_seconds=0.2)

        async def scenario(app):
            flight = asyncio.ensure_future(
                asgi_request(app, "POST", "/query", query_payload(queries[0]))
            )
            await asyncio.sleep(0.05)
            assert (await asgi_request(app, "GET", "/healthz")).status == 200
            assert (await asgi_request(app, "GET", "/stats")).status == 200
            assert (await flight).status == 200

        drive(scenario, slow, max_pending=1)

    def test_max_pending_must_be_positive(self):
        engine, _queries = random_instance(1)

        async def scenario(app):
            pass  # construction is the test

        with pytest.raises(Exception, match="max_pending"):
            drive(scenario, engine, max_pending=0)


class TestDraining:
    def test_begin_drain_refuses_new_work(self):
        engine, queries = random_instance(2)

        async def scenario(app):
            assert not app.draining
            app.begin_drain()
            assert app.draining
            response = await asgi_request(
                app, "POST", "/query", query_payload(queries[0])
            )
            assert response.status == 503
            assert response.headers.get("retry-after") == "1"
            assert response.json()["error"]["type"] == "Draining"

            health = (await asgi_request(app, "GET", "/healthz")).json()
            assert health["status"] == "draining"
            # Reads stay up for the host doing the draining.
            assert (await asgi_request(app, "GET", "/stats")).status == 200

        drive(scenario, engine)

    def test_stdlib_server_drains_before_stopping(self):
        engine, queries = random_instance(2)
        server = serve(QueryService(engine, cache_capacity=16), drain_seconds=2.0)

        def request(method, path, payload=None):
            host, port = server.address
            return asyncio.run(http_request(host, port, method, path, payload))

        try:
            ok = request("POST", "/query", query_payload(queries[0]))
            assert ok.status == 200
            assert server.drain() is True
            refused = request("POST", "/query", query_payload(queries[1]))
            assert refused.status == 503
            health = request("GET", "/healthz")
            assert health.json()["status"] == "draining"
        finally:
            server.close()


class _OpenBreakerBackend:
    """What a process backend with one open lane reports."""

    def breaker_stats(self) -> dict:
        return {
            "opened": 1,
            "closed": 0,
            "half_open_probes": 0,
            "short_circuits": 2,
            "lanes": [
                {"lane": 0, "state": "open", "failures": 3, "probing": False},
                {"lane": 1, "state": "closed", "failures": 0, "probing": False},
            ],
        }


class TestHealthz:
    def test_reports_degraded_while_a_breaker_is_open(self):
        engine, _queries = random_instance(3)
        service = QueryService(engine, cache_capacity=0)
        service._backend = _OpenBreakerBackend()

        async def main():
            front = AsyncQueryService(service)
            try:
                return await asgi_request(KORApp(front), "GET", "/healthz")
            finally:
                await front.close()

        response = asyncio.run(main())
        payload = response.json()
        assert payload["status"] == "degraded"
        assert payload["breakers"]["lanes"][0]["state"] == "open"
        assert payload["breakers"]["short_circuits"] == 2

    def test_plain_service_is_ok_without_breakers(self):
        engine, _queries = random_instance(3)

        async def scenario(app):
            payload = (await asgi_request(app, "GET", "/healthz")).json()
            assert payload["status"] == "ok"
            assert "breakers" not in payload
            assert payload["pending"] == 0

        drive(scenario, engine)
