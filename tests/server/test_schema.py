"""The wire contract: ``kor.route_result.v1`` round-trips and rejections.

The schema is the serving tier's boundary — these tests pin both
directions: every engine result survives encode → validate → decode with
its differential fingerprint intact, and malformed documents are
rejected with :class:`~repro.server.schema.WireError`, never emitted.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import ALGORITHMS
from repro.core.query import KORQuery
from repro.server.schema import (
    ROUTE_BATCH_SCHEMA,
    ROUTE_RESULT_SCHEMA,
    WireError,
    encode_batch,
    encode_error,
    encode_route_result,
    encode_update_ack,
    decode_route_result,
    parse_graph_update,
    parse_route_query,
    validate_route_result,
)

from tests.service.test_differential import fingerprint, random_instance


class TestRoundTrip:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_round_trips_fingerprint_exact(self, algorithm):
        engine, queries = random_instance(0)
        for query in queries:
            result = engine.run(query, algorithm=algorithm)
            document = validate_route_result(encode_route_result(result))
            assert document["schema"] == ROUTE_RESULT_SCHEMA
            assert fingerprint(decode_route_result(document)) == fingerprint(result)

    def test_round_trip_survives_json_serialisation(self):
        """The actual wire: dumps/loads between encode and decode."""
        engine, queries = random_instance(3)
        result = engine.run(queries[0], algorithm="bucketbound")
        body = json.dumps(encode_route_result(result), allow_nan=False)
        assert fingerprint(decode_route_result(json.loads(body))) == fingerprint(result)

    def test_routeless_result_round_trips_with_null_scores(self):
        """Missing vocabulary => no route; scores must be null on the
        wire and come back as inf via the KORResult properties."""
        engine, _queries = random_instance(0)
        query = KORQuery(0, 1, ("no-such-keyword-anywhere",), 4.0)
        result = engine.run(query, algorithm="bucketbound")
        assert result.route is None
        document = validate_route_result(encode_route_result(result))
        assert document["route"] is None
        assert document["score"] == {"objective": None, "budget": None}
        decoded = decode_route_result(document)
        assert fingerprint(decoded) == fingerprint(result)
        assert decoded.objective_score == float("inf")

    def test_explain_payload_carries_search_counters(self):
        engine, queries = random_instance(1)
        result = engine.run(queries[0], algorithm="bucketbound")
        document = validate_route_result(encode_route_result(result, explain=True))
        assert document["explain"]["search"]["labels_created"] >= 0
        decoded = decode_route_result(document)
        assert decoded.stats.labels_created == result.stats.labels_created


def valid_document():
    engine, queries = random_instance(0)
    return encode_route_result(engine.run(queries[0], algorithm="bucketbound"))


class TestValidateRejections:
    def test_non_object_rejected(self):
        with pytest.raises(WireError, match="expected a JSON object"):
            validate_route_result(["not", "an", "object"])

    @pytest.mark.parametrize(
        "field",
        (
            "schema",
            "query",
            "algorithm",
            "found",
            "feasible",
            "covers_keywords",
            "within_budget",
            "score",
            "route",
            "failure_reason",
        ),
    )
    def test_every_required_field_is_enforced(self, field):
        document = valid_document()
        del document[field]
        with pytest.raises(WireError, match=f"{field!r} is missing"):
            validate_route_result(document)

    def test_wrong_schema_name_rejected(self):
        document = valid_document()
        document["schema"] = "kor.route_result.v0"
        with pytest.raises(WireError, match="schema must be"):
            validate_route_result(document)

    def test_bool_does_not_satisfy_numeric_fields(self):
        document = valid_document()
        document["query"]["source"] = True  # bool is an int subclass
        with pytest.raises(WireError, match="'source'"):
            validate_route_result(document)

    def test_found_must_mirror_route_presence(self):
        document = valid_document()
        document["found"] = not document["found"]
        with pytest.raises(WireError, match="'found' must mirror"):
            validate_route_result(document)

    def test_score_nulls_must_track_route(self):
        document = valid_document()
        assert document["route"] is not None
        document["score"]["objective"] = None
        with pytest.raises(WireError, match="score breakdown"):
            validate_route_result(document)

    def test_feasible_consistency_enforced(self):
        document = valid_document()
        document["feasible"] = not document["feasible"]
        with pytest.raises(WireError, match="'feasible'"):
            validate_route_result(document)

    def test_route_nodes_must_be_integers(self):
        document = valid_document()
        if document["route"] is None:
            pytest.skip("battery produced no route for this seed")
        document["route"] = [str(node) for node in document["route"]]
        with pytest.raises(WireError, match="integer node ids"):
            validate_route_result(document)

    def test_keywords_must_be_strings(self):
        document = valid_document()
        document["query"]["keywords"] = [1, 2]
        with pytest.raises(WireError, match="keywords"):
            validate_route_result(document)

    def test_explain_must_be_an_object_when_present(self):
        document = valid_document()
        document["explain"] = "counters"
        with pytest.raises(WireError, match="'explain'"):
            validate_route_result(document)


class TestParseRouteQuery:
    def payload(self, **overrides):
        base = {"source": 0, "target": 1, "keywords": ["pub"], "budget_limit": 4.0}
        base.update(overrides)
        return base

    def test_defaults(self):
        spec = parse_route_query(self.payload())
        assert spec["algorithm"] == "bucketbound"
        assert spec["params"] == {}
        assert spec["explain"] is False
        assert spec["timeout"] is None
        assert spec["query"] == KORQuery(0, 1, ("pub",), 4.0)

    def test_explicit_fields(self):
        spec = parse_route_query(
            self.payload(
                algorithm="osscaling",
                params={"epsilon": 0.25},
                explain=True,
                timeout=2.5,
            )
        )
        assert spec["algorithm"] == "osscaling"
        assert spec["params"] == {"epsilon": 0.25}
        assert spec["explain"] is True
        assert spec["timeout"] == 2.5

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(WireError, match="unknown algorithm"):
            parse_route_query(self.payload(algorithm="dijkstra"))

    def test_unsupported_schema_rejected(self):
        with pytest.raises(WireError, match="unsupported schema"):
            parse_route_query(self.payload(schema="kor.route_query.v9"))

    def test_missing_field_rejected(self):
        with pytest.raises(WireError, match="'budget_limit' is missing"):
            parse_route_query({"source": 0, "target": 1, "keywords": []})

    def test_non_string_keywords_rejected(self):
        with pytest.raises(WireError, match="keywords"):
            parse_route_query(self.payload(keywords=[3]))

    @pytest.mark.parametrize("timeout", (0, -1.0, "soon", True))
    def test_bad_timeout_rejected(self, timeout):
        with pytest.raises(WireError, match="timeout"):
            parse_route_query(self.payload(timeout=timeout))

    def test_params_must_be_an_object(self):
        with pytest.raises(WireError, match="params"):
            parse_route_query(self.payload(params=[1, 2]))


class TestEnvelopes:
    def test_batch_envelope(self):
        envelope = encode_batch([{"a": 1}, {"b": 2}])
        assert envelope["schema"] == ROUTE_BATCH_SCHEMA
        assert envelope["count"] == 2
        assert envelope["results"] == [{"a": 1}, {"b": 2}]

    def test_error_envelope(self):
        envelope = encode_error(WireError("bad payload"))
        assert envelope == {
            "error": {"type": "WireError", "message": "bad payload"}
        }


class TestGraphUpdateWire:
    """The ``kor.graph_update.v1`` / ``..._ack.v1`` surfaces (ISSUE 9)."""

    def payload(self, **overrides):
        body = {
            "schema": "kor.graph_update.v1",
            "ops": [
                {"op": "update_edge_cost", "u": 0, "v": 1, "objective": 2.0},
                {"op": "close_node", "node": 2},
                {"op": "open_node", "node": 2},
                {"op": "update_keywords", "node": 1, "keywords": ["pub"]},
            ],
        }
        body.update(overrides)
        return body

    def test_parse_returns_mutator_shaped_ops(self):
        ops = parse_graph_update(self.payload())
        assert [op["op"] for op in ops] == [
            "update_edge_cost", "close_node", "open_node", "update_keywords",
        ]
        assert ops[0] == {"op": "update_edge_cost", "u": 0, "v": 1, "objective": 2.0}
        assert ops[3]["keywords"] == ["pub"]

    def test_schema_field_is_optional_but_checked(self):
        body = self.payload()
        del body["schema"]
        assert len(parse_graph_update(body)) == 4
        with pytest.raises(WireError, match="unsupported schema"):
            parse_graph_update(self.payload(schema="kor.graph_update.v9"))

    def test_ops_must_be_a_non_empty_list(self):
        for ops in ([], None, "close it all"):
            with pytest.raises(WireError, match="non-empty list"):
                parse_graph_update(self.payload(ops=ops))

    def test_unknown_op_is_rejected_with_position(self):
        with pytest.raises(WireError, match=r"ops\[0\].*unknown op"):
            parse_graph_update(self.payload(ops=[{"op": "set_on_fire"}]))

    def test_update_edge_cost_needs_a_weight(self):
        with pytest.raises(WireError, match="'objective', 'budget', or both"):
            parse_graph_update(
                self.payload(ops=[{"op": "update_edge_cost", "u": 0, "v": 1}])
            )

    @pytest.mark.parametrize("weight", (0, -1.5, "cheap", True))
    def test_non_positive_weights_are_rejected(self, weight):
        with pytest.raises(WireError):
            parse_graph_update(
                self.payload(
                    ops=[{"op": "update_edge_cost", "u": 0, "v": 1,
                          "objective": weight}]
                )
            )

    @pytest.mark.parametrize("node", (-1, 1.5, "zero", True, None))
    def test_bad_node_ids_are_rejected(self, node):
        with pytest.raises(WireError):
            parse_graph_update(self.payload(ops=[{"op": "close_node", "node": node}]))

    def test_bad_keywords_are_rejected(self):
        for keywords in (None, "pub", ["pub", ""], [1]):
            with pytest.raises(WireError, match="keywords"):
                parse_graph_update(
                    self.payload(
                        ops=[{"op": "update_keywords", "node": 0,
                              "keywords": keywords}]
                    )
                )

    def test_ack_envelope(self):
        ack = encode_update_ack(7, applied=3)
        assert ack == {
            "schema": "kor.graph_update_ack.v1",
            "epoch": 7,
            "applied": 3,
        }


class TestResultEpochStamp:
    """The additive ``epoch`` field on ``kor.route_result.v1``."""

    def result(self):
        engine, queries = random_instance(0)
        return engine.run(queries[0], algorithm="exact")

    def test_epoch_is_absent_unless_supplied(self):
        document = encode_route_result(self.result())
        assert "epoch" not in document
        validate_route_result(document)

    def test_epoch_round_trips_and_validates(self):
        document = encode_route_result(self.result(), epoch=5)
        assert document["epoch"] == 5
        validate_route_result(document)
        json.loads(json.dumps(document))  # wire-safe

    @pytest.mark.parametrize("epoch", (-1, 1.5, "five", True))
    def test_bad_epoch_is_rejected(self, epoch):
        document = encode_route_result(self.result())
        document["epoch"] = epoch
        with pytest.raises(WireError, match="epoch"):
            validate_route_result(document)
