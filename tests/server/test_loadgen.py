"""The open-loop load generator: arrival process, report math, validation.

Unit-level coverage drives ``run_load`` against the in-process ASGI app
(tiny random graphs — the CI smoke job covers the real-dataset stdlib
path), and pins the report aggregation the artifacts are built from.
"""

from __future__ import annotations

import asyncio
import importlib.util
import sys
from pathlib import Path

import pytest

from repro.server import KORApp, asgi_request
from repro.service import AsyncQueryService, QueryService

from tests.service.test_differential import random_instance

_LOADGEN_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "loadgen.py"
_spec = importlib.util.spec_from_file_location("kor_loadgen", _LOADGEN_PATH)
loadgen = importlib.util.module_from_spec(_spec)
sys.modules["kor_loadgen"] = loadgen
_spec.loader.exec_module(loadgen)


def run_against_asgi(queries, **kwargs):
    engine = kwargs.pop("engine")
    front_kwargs = kwargs.pop("front_kwargs", {})

    async def drive():
        front = AsyncQueryService(QueryService(engine, cache_capacity=0), **front_kwargs)
        app = KORApp(front)
        try:
            return await loadgen.run_load(
                lambda payload: asgi_request(app, "POST", "/query", payload),
                queries,
                **kwargs,
            )
        finally:
            await front.close()

    return asyncio.run(drive())


class TestRunLoad:
    def test_replays_queries_and_validates_every_response(self):
        engine, queries = random_instance(0)
        outcome = run_against_asgi(
            queries,
            engine=engine,
            rate_qps=200.0,
            duration_seconds=0.5,
            algorithm="bucketbound",
            seed=7,
        )
        assert outcome["offered_requests"] > 0
        assert len(outcome["latencies"]) == outcome["offered_requests"]
        assert outcome["schema_errors"] == 0
        assert outcome["http_errors"] == 0
        assert outcome["transport_errors"] == 0

    def test_open_loop_offers_by_the_clock_not_by_completions(self):
        """The arrival count follows the Poisson schedule even when the
        server answers slowly — that is what 'open loop' means."""
        engine, queries = random_instance(0)
        from tests.service.test_frontend import SlowEngine

        slow = SlowEngine(engine, delay_seconds=0.05)
        outcome = run_against_asgi(
            queries,
            engine=slow,
            rate_qps=100.0,
            duration_seconds=0.4,
            seed=1,
        )
        # ~40 offered in 0.4 s despite each answer costing >= 50 ms: a
        # closed loop could have completed at most ~8 sequentially.
        assert outcome["offered_requests"] > 15

    def test_schema_violations_are_counted_not_raised(self):
        engine, queries = random_instance(0)

        class FakeResponse:
            status = 200
            body = b'{"schema": "kor.route_result.v1"}'  # missing fields

            def json(self):
                import json

                return json.loads(self.body)

        async def drive():
            async def bad_send(payload):
                return FakeResponse()

            return await loadgen.run_load(
                bad_send, queries, rate_qps=300.0, duration_seconds=0.2, seed=0
            )

        outcome = asyncio.run(drive())
        assert outcome["schema_errors"] == outcome["offered_requests"] > 0
        assert not outcome["latencies"]

    def test_http_and_transport_errors_classified(self):
        engine, queries = random_instance(0)

        class Teapot:
            status = 418
            body = b"{}"

            def json(self):
                return {}

        async def drive(send):
            return await loadgen.run_load(
                send, queries, rate_qps=300.0, duration_seconds=0.2, seed=0
            )

        async def http_error(payload):
            return Teapot()

        outcome = asyncio.run(drive(http_error))
        assert outcome["http_errors"] == outcome["offered_requests"] > 0

        async def broken(payload):
            raise ConnectionResetError("boom")

        outcome = asyncio.run(drive(broken))
        assert outcome["transport_errors"] == outcome["offered_requests"] > 0

    def test_max_requests_caps_the_schedule(self):
        engine, queries = random_instance(0)
        outcome = run_against_asgi(
            queries,
            engine=engine,
            rate_qps=500.0,
            duration_seconds=5.0,
            max_requests=5,
            seed=0,
        )
        assert outcome["offered_requests"] == 5

    def test_guards(self):
        _engine, queries = random_instance(0)

        async def send(payload):  # pragma: no cover - never reached
            raise AssertionError

        for bad in (
            {"rate_qps": 0.0, "duration_seconds": 1.0},
            {"rate_qps": 10.0, "duration_seconds": 0.0},
        ):
            with pytest.raises(ValueError):
                asyncio.run(loadgen.run_load(send, queries, **bad))
        with pytest.raises(ValueError, match="at least one query"):
            asyncio.run(loadgen.run_load(send, [], rate_qps=10.0, duration_seconds=1.0))


class TestRetries:
    """``--retry``: transport failures only, jittered backoff, counted."""

    def drive(self, send, **kwargs):
        _engine, queries = random_instance(0)
        kwargs.setdefault("rate_qps", 300.0)
        kwargs.setdefault("duration_seconds", 0.2)
        kwargs.setdefault("max_requests", 3)
        kwargs.setdefault("seed", 0)
        return asyncio.run(loadgen.run_load(send, queries, **kwargs))

    def test_transport_error_is_retried_then_succeeds(self):
        engine, queries = random_instance(0)
        failures = {"left": 2}

        async def drive():
            front = AsyncQueryService(QueryService(engine, cache_capacity=0))
            app = KORApp(front)

            async def flaky(payload):
                if failures["left"]:
                    failures["left"] -= 1
                    raise ConnectionResetError("boom")
                return await asgi_request(app, "POST", "/query", payload)

            try:
                return await loadgen.run_load(
                    flaky,
                    queries,
                    rate_qps=300.0,
                    duration_seconds=0.2,
                    max_requests=1,
                    retries=3,
                    seed=0,
                )
            finally:
                await front.close()

        outcome = asyncio.run(drive())
        # Both failures were absorbed by retries, not counted as errors.
        assert outcome["retries"] == 2
        assert outcome["transport_errors"] == 0
        assert len(outcome["latencies"]) == 1

    def test_exhausted_retries_count_one_transport_error(self):
        async def broken(payload):
            raise ConnectionResetError("boom")

        outcome = self.drive(broken, retries=2, max_requests=1)
        assert outcome["transport_errors"] == 1
        assert outcome["retries"] == 2

    def test_timeouts_are_never_retried(self):
        async def stuck(payload):
            await asyncio.sleep(60.0)

        outcome = self.drive(stuck, retries=5, max_requests=2, request_timeout=0.05)
        assert outcome["timeout_errors"] == 2
        assert outcome["retries"] == 0

    def test_http_errors_are_never_retried(self):
        class Shed:
            status = 503
            body = b"{}"

            def json(self):
                return {}

        async def shedding(payload):
            return Shed()

        outcome = self.drive(shedding, retries=5, max_requests=2)
        assert outcome["http_errors"] == 2
        assert outcome["retries"] == 0

    def test_negative_retries_rejected(self):
        async def send(payload):  # pragma: no cover - never reached
            raise AssertionError

        with pytest.raises(ValueError, match="retries"):
            self.drive(send, retries=-1)

    def test_retries_reported_beside_errors_but_outside_total(self):
        async def broken(payload):
            raise ConnectionResetError("boom")

        outcome = self.drive(broken, retries=1, max_requests=2)
        report = loadgen.build_report(outcome, rate_qps=300.0, slo_seconds=0.1)
        assert report["errors"]["transport_errors"] == 2
        assert report["errors"]["retries"] == 2
        assert report["errors"]["total"] == 2  # retries are not errors
        assert "| transport retries | 2 |" in loadgen.render_markdown(report)


class TestReport:
    def outcome(self):
        return {
            "latencies": [0.010, 0.020, 0.030, 0.040, 0.200],
            "http_errors": 1,
            "schema_errors": 0,
            "timeout_errors": 2,
            "transport_errors": 0,
            "offered_requests": 8,
            "elapsed_seconds": 2.0,
        }

    def test_build_report_aggregates(self):
        report = loadgen.build_report(
            self.outcome(), rate_qps=4.0, slo_seconds=0.100, error_budget=0.25
        )
        assert report["schema"] == "kor.load_report.v1"
        assert report["offered"] == {"rate_qps": 4.0, "requests": 8}
        assert report["achieved"]["completed"] == 5
        assert report["achieved"]["qps"] == pytest.approx(2.5)
        assert report["errors"]["total"] == 3
        assert report["latency_ms"]["p50"] == pytest.approx(30.0)
        assert report["latency_ms"]["max"] == pytest.approx(200.0)
        assert report["slo"]["violations"] == 1  # only the 200 ms sample
        assert report["slo"]["violation_rate"] == pytest.approx(0.2)
        # 20% violations against a 25% budget: 80% of the budget spent.
        assert report["slo"]["budget_used"] == pytest.approx(0.8)

    def test_empty_run_builds_a_zero_report(self):
        report = loadgen.build_report(
            {
                "latencies": [],
                "http_errors": 0,
                "schema_errors": 0,
                "timeout_errors": 0,
                "transport_errors": 0,
                "offered_requests": 0,
                "elapsed_seconds": 1.0,
            },
            rate_qps=1.0,
            slo_seconds=0.1,
        )
        assert report["achieved"]["completed"] == 0
        assert report["latency_ms"]["p99"] == 0.0
        assert report["slo"]["budget_used"] == 0.0

    def test_markdown_rendering(self):
        report = loadgen.build_report(
            self.outcome(),
            rate_qps=4.0,
            slo_seconds=0.1,
            meta={"workload": "unit", "algorithm": "bucketbound", "transport": "asgi"},
        )
        markdown = loadgen.render_markdown(report)
        assert "# KOR load report" in markdown
        assert "| p99 latency |" in markdown
        assert "`unit`" in markdown
        assert "SLO violations" in markdown
